"""Explicit-alphabet finite automata.

This module implements the classic constructions over automata whose
alphabet is a finite set of arbitrary hashable symbols: Thompson's
construction from regular expressions, the subset construction, product
constructions, Hopcroft minimisation, emptiness and shortest-word
queries.

Within the verifier these automata serve two purposes:

* routing relations (paper §3) are regular expressions over traversal
  and test symbols; evaluating ``c<R>d`` on a *concrete* store runs the
  NFA for ``R`` against the store graph (see
  :mod:`repro.storelogic.eval`);
* the test suite uses them as an independently implemented oracle for
  the symbolic automata.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import (Dict, FrozenSet, Hashable, Iterable, Iterator, List,
                    Optional, Sequence, Set, Tuple)

Symbol = Hashable


# ----------------------------------------------------------------------
# Regular expressions
# ----------------------------------------------------------------------

class Regex:
    """Base class of regular-expression ASTs.

    Build with the factory methods and combine with ``|`` (union),
    ``+`` (concatenation) and ``.star()``:

        >>> r = (Regex.symbol("a") + Regex.symbol("b").star())
        >>> r.to_nfa().accepts(["a", "b", "b"])
        True
    """

    @staticmethod
    def empty() -> "Regex":
        """The empty language."""
        return _Empty()

    @staticmethod
    def epsilon() -> "Regex":
        """The language containing only the empty word."""
        return _Epsilon()

    @staticmethod
    def symbol(sym: Symbol) -> "Regex":
        """The single-symbol language ``{sym}``."""
        return _Sym(sym)

    def __add__(self, other: "Regex") -> "Regex":
        return _Cat(self, other)

    def __or__(self, other: "Regex") -> "Regex":
        return _Alt(self, other)

    def star(self) -> "Regex":
        """Kleene star."""
        return _Star(self)

    def plus(self) -> "Regex":
        """One or more repetitions."""
        return _Cat(self, _Star(self))

    def opt(self) -> "Regex":
        """Zero or one occurrence."""
        return _Alt(self, _Epsilon())

    def symbols(self) -> FrozenSet[Symbol]:
        """All symbols mentioned in the expression."""
        raise NotImplementedError

    def to_nfa(self) -> "Nfa":
        """Thompson's construction."""
        builder = _NfaBuilder()
        start, end = builder.build(self)
        return Nfa(num_states=builder.count,
                   alphabet=self.symbols(),
                   initial={start},
                   accepting={end},
                   transitions=builder.transitions,
                   epsilon=builder.epsilon)


@dataclass(frozen=True)
class _Empty(Regex):
    def symbols(self) -> FrozenSet[Symbol]:
        return frozenset()


@dataclass(frozen=True)
class _Epsilon(Regex):
    def symbols(self) -> FrozenSet[Symbol]:
        return frozenset()


@dataclass(frozen=True)
class _Sym(Regex):
    sym: Symbol

    def symbols(self) -> FrozenSet[Symbol]:
        return frozenset([self.sym])


@dataclass(frozen=True)
class _Cat(Regex):
    left: Regex
    right: Regex

    def symbols(self) -> FrozenSet[Symbol]:
        return self.left.symbols() | self.right.symbols()


@dataclass(frozen=True)
class _Alt(Regex):
    left: Regex
    right: Regex

    def symbols(self) -> FrozenSet[Symbol]:
        return self.left.symbols() | self.right.symbols()


@dataclass(frozen=True)
class _Star(Regex):
    inner: Regex

    def symbols(self) -> FrozenSet[Symbol]:
        return self.inner.symbols()


class _NfaBuilder:
    """State allocator and transition accumulator for Thompson NFAs."""

    def __init__(self) -> None:
        self.count = 0
        self.transitions: Dict[Tuple[int, Symbol], Set[int]] = {}
        self.epsilon: Dict[int, Set[int]] = {}

    def fresh(self) -> int:
        state = self.count
        self.count += 1
        return state

    def add(self, src: int, sym: Symbol, dst: int) -> None:
        self.transitions.setdefault((src, sym), set()).add(dst)

    def add_eps(self, src: int, dst: int) -> None:
        self.epsilon.setdefault(src, set()).add(dst)

    def build(self, regex: Regex) -> Tuple[int, int]:
        if isinstance(regex, _Empty):
            return self.fresh(), self.fresh()
        if isinstance(regex, _Epsilon):
            start, end = self.fresh(), self.fresh()
            self.add_eps(start, end)
            return start, end
        if isinstance(regex, _Sym):
            start, end = self.fresh(), self.fresh()
            self.add(start, regex.sym, end)
            return start, end
        if isinstance(regex, _Cat):
            s1, e1 = self.build(regex.left)
            s2, e2 = self.build(regex.right)
            self.add_eps(e1, s2)
            return s1, e2
        if isinstance(regex, _Alt):
            start, end = self.fresh(), self.fresh()
            s1, e1 = self.build(regex.left)
            s2, e2 = self.build(regex.right)
            self.add_eps(start, s1)
            self.add_eps(start, s2)
            self.add_eps(e1, end)
            self.add_eps(e2, end)
            return start, end
        if isinstance(regex, _Star):
            start, end = self.fresh(), self.fresh()
            s1, e1 = self.build(regex.inner)
            self.add_eps(start, s1)
            self.add_eps(start, end)
            self.add_eps(e1, s1)
            self.add_eps(e1, end)
            return start, end
        raise TypeError(f"unknown regex node {regex!r}")


# ----------------------------------------------------------------------
# NFA
# ----------------------------------------------------------------------

@dataclass
class Nfa:
    """A nondeterministic finite automaton with epsilon moves.

    States are ``0 .. num_states-1``.  ``transitions`` maps
    ``(state, symbol)`` to target sets; ``epsilon`` maps a state to its
    epsilon successors.
    """

    num_states: int
    alphabet: FrozenSet[Symbol]
    initial: Set[int]
    accepting: Set[int]
    transitions: Dict[Tuple[int, Symbol], Set[int]] = field(
        default_factory=dict)
    epsilon: Dict[int, Set[int]] = field(default_factory=dict)

    def eps_closure(self, states: Iterable[int]) -> FrozenSet[int]:
        """All states reachable by epsilon moves from ``states``."""
        closure = set(states)
        stack = list(closure)
        while stack:
            state = stack.pop()
            for nxt in self.epsilon.get(state, ()):
                if nxt not in closure:
                    closure.add(nxt)
                    stack.append(nxt)
        return frozenset(closure)

    def step(self, states: FrozenSet[int], sym: Symbol) -> FrozenSet[int]:
        """One symbol step (including closing under epsilon)."""
        targets: Set[int] = set()
        for state in states:
            targets |= self.transitions.get((state, sym), set())
        return self.eps_closure(targets)

    def accepts(self, word: Sequence[Symbol]) -> bool:
        """Membership test by on-the-fly subset simulation."""
        current = self.eps_closure(self.initial)
        for sym in word:
            current = self.step(current, sym)
            if not current:
                return False
        return bool(current & self.accepting)

    def determinize(self, alphabet: Optional[Iterable[Symbol]] = None
                    ) -> "Dfa":
        """Subset construction producing a complete DFA.

        ``alphabet`` defaults to the NFA's own alphabet; pass a larger
        one to embed into a bigger symbol universe (unknown symbols go
        to the sink).
        """
        sigma = frozenset(alphabet) if alphabet is not None else self.alphabet
        start = self.eps_closure(self.initial)
        index: Dict[FrozenSet[int], int] = {start: 0}
        worklist = deque([start])
        delta: List[Dict[Symbol, int]] = [{}]
        accepting: Set[int] = set()
        while worklist:
            subset = worklist.popleft()
            src = index[subset]
            if subset & self.accepting:
                accepting.add(src)
            for sym in sigma:
                target = self.step(subset, sym)
                if target not in index:
                    index[target] = len(index)
                    delta.append({})
                    worklist.append(target)
                delta[src][sym] = index[target]
        return Dfa(num_states=len(index), alphabet=sigma, initial=0,
                   accepting=accepting, delta=delta)


# ----------------------------------------------------------------------
# DFA
# ----------------------------------------------------------------------

@dataclass
class Dfa:
    """A complete deterministic finite automaton.

    ``delta[q]`` maps every symbol of ``alphabet`` to a target state.
    """

    num_states: int
    alphabet: FrozenSet[Symbol]
    initial: int
    accepting: Set[int]
    delta: List[Dict[Symbol, int]]

    def _check_complete(self) -> None:
        for q in range(self.num_states):
            missing = self.alphabet - self.delta[q].keys()
            if missing:
                raise ValueError(
                    f"state {q} lacks transitions for "
                    f"{sorted(map(str, missing))}")

    def accepts(self, word: Sequence[Symbol]) -> bool:
        """Membership test."""
        state = self.initial
        for sym in word:
            state = self.delta[state][sym]
        return state in self.accepting

    def complement(self) -> "Dfa":
        """Language complement (relies on completeness)."""
        return Dfa(num_states=self.num_states, alphabet=self.alphabet,
                   initial=self.initial,
                   accepting=set(range(self.num_states)) - self.accepting,
                   delta=self.delta)

    def product(self, other: "Dfa", accept_both: bool = True) -> "Dfa":
        """Synchronous product; intersection or union by ``accept_both``."""
        if self.alphabet != other.alphabet:
            raise ValueError("product requires identical alphabets")
        index: Dict[Tuple[int, int], int] = {}
        start = (self.initial, other.initial)
        index[start] = 0
        delta: List[Dict[Symbol, int]] = [{}]
        accepting: Set[int] = set()
        worklist = deque([start])
        while worklist:
            pair = worklist.popleft()
            src = index[pair]
            in_self = pair[0] in self.accepting
            in_other = pair[1] in other.accepting
            if (in_self and in_other) if accept_both \
                    else (in_self or in_other):
                accepting.add(src)
            for sym in self.alphabet:
                target = (self.delta[pair[0]][sym], other.delta[pair[1]][sym])
                if target not in index:
                    index[target] = len(index)
                    delta.append({})
                    worklist.append(target)
                delta[src][sym] = index[target]
        return Dfa(num_states=len(index), alphabet=self.alphabet,
                   initial=0, accepting=accepting, delta=delta)

    def intersect(self, other: "Dfa") -> "Dfa":
        """Language intersection."""
        return self.product(other, accept_both=True)

    def union(self, other: "Dfa") -> "Dfa":
        """Language union."""
        return self.product(other, accept_both=False)

    def difference(self, other: "Dfa") -> "Dfa":
        """Language difference ``L(self) \\ L(other)``."""
        return self.intersect(other.complement())

    def is_empty(self) -> bool:
        """True iff no word is accepted."""
        return self.shortest_word() is None

    def is_universal(self) -> bool:
        """True iff every word over the alphabet is accepted."""
        return self.complement().is_empty()

    def shortest_word(self) -> Optional[List[Symbol]]:
        """A shortest accepted word, or None if the language is empty.

        Ties are broken deterministically by symbol sort order (on
        ``repr``), so results are stable across runs.
        """
        if self.initial in self.accepting:
            return []
        parent: Dict[int, Tuple[int, Symbol]] = {}
        seen = {self.initial}
        queue = deque([self.initial])
        ordered = sorted(self.alphabet, key=repr)
        while queue:
            state = queue.popleft()
            for sym in ordered:
                target = self.delta[state][sym]
                if target in seen:
                    continue
                seen.add(target)
                parent[target] = (state, sym)
                if target in self.accepting:
                    word: List[Symbol] = []
                    cursor = target
                    while cursor != self.initial:
                        prev, via = parent[cursor]
                        word.append(via)
                        cursor = prev
                    word.reverse()
                    return word
                queue.append(target)
        return None

    def includes(self, other: "Dfa") -> bool:
        """True iff ``L(other) ⊆ L(self)``."""
        return other.difference(self).is_empty()

    def equivalent(self, other: "Dfa") -> bool:
        """Language equality."""
        return self.includes(other) and other.includes(self)

    def words_up_to(self, max_len: int) -> Iterator[Tuple[Symbol, ...]]:
        """Enumerate all accepted words of length at most ``max_len``.

        Exponential; only for small alphabets in tests.
        """
        ordered = sorted(self.alphabet, key=repr)
        for length in range(max_len + 1):
            for word in itertools.product(ordered, repeat=length):
                if self.accepts(word):
                    yield word

    def minimize(self) -> "Dfa":
        """Hopcroft's partition-refinement minimisation.

        The result is the unique minimal complete DFA (up to state
        numbering); unreachable states are dropped first.
        """
        reachable = self._reachable()
        remap = {old: new for new, old in enumerate(sorted(reachable))}
        states = range(len(remap))
        delta = [{sym: remap[self.delta[old][sym]] for sym in self.alphabet}
                 for old in sorted(reachable)]
        accepting = {remap[q] for q in self.accepting if q in remap}
        initial = remap[self.initial]

        # Hopcroft refinement.
        non_accepting = set(states) - accepting
        partition: List[Set[int]] = [s for s in (accepting,
                                                 non_accepting) if s]
        worklist: List[Set[int]] = [set(s) for s in partition]
        inverse: Dict[Tuple[Symbol, int], Set[int]] = {}
        for q in states:
            for sym, target in delta[q].items():
                inverse.setdefault((sym, target), set()).add(q)
        while worklist:
            splitter = worklist.pop()
            for sym in self.alphabet:
                pre: Set[int] = set()
                for target in splitter:
                    pre |= inverse.get((sym, target), set())
                new_partition: List[Set[int]] = []
                for block in partition:
                    inside = block & pre
                    outside = block - pre
                    if inside and outside:
                        new_partition.append(inside)
                        new_partition.append(outside)
                        if block in worklist:
                            worklist.remove(block)
                            worklist.append(inside)
                            worklist.append(outside)
                        else:
                            worklist.append(
                                inside if len(inside) <= len(outside)
                                else outside)
                    else:
                        new_partition.append(block)
                partition = new_partition
        block_of: Dict[int, int] = {}
        for number, block in enumerate(partition):
            for q in block:
                block_of[q] = number
        new_delta: List[Dict[Symbol, int]] = [{} for _ in partition]
        new_accepting: Set[int] = set()
        for number, block in enumerate(partition):
            representative = next(iter(block))
            for sym in self.alphabet:
                new_delta[number][sym] = block_of[delta[representative][sym]]
            if representative in accepting:
                new_accepting.add(number)
        return Dfa(num_states=len(partition), alphabet=self.alphabet,
                   initial=block_of[initial], accepting=new_accepting,
                   delta=new_delta)

    def _reachable(self) -> Set[int]:
        seen = {self.initial}
        stack = [self.initial]
        while stack:
            state = stack.pop()
            for target in self.delta[state].values():
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return seen
