"""Rendering of symbolic automata (the paper's automaton figures).

The §3 figure shows the deterministic automaton for ``x<next*>p`` with
edges labelled by store-alphabet symbols.  :func:`render_transitions`
produces that view textually: one line per (state, guard) -> state
edge, where the guard prints the BDD path as track literals;
:func:`to_dot` emits Graphviz for the same picture.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.automata.symbolic import SymbolicDfa
from repro.mso.ast import Var


def _track_names(tracks: Optional[Mapping[Var, int]]) -> Dict[int, str]:
    if tracks is None:
        return {}
    return {index: var.name for var, index in tracks.items()}


def _guard_text(assignment: Dict[int, bool],
                names: Dict[int, str]) -> str:
    if not assignment:
        return "true"
    parts = []
    for track in sorted(assignment):
        name = names.get(track, f"t{track}")
        parts.append(name if assignment[track] else f"~{name}")
    return " & ".join(parts)


def render_transitions(dfa: SymbolicDfa,
                       tracks: Optional[Mapping[Var, int]] = None) -> str:
    """A textual transition table.

    Each line is ``state --[guard]--> state``; guards are the paths of
    the transition BDD (tracks absent from a guard are don't-cares).
    Accepting states are starred, the initial state gets an arrow.
    """
    names = _track_names(tracks)
    lines: List[str] = []
    for state in range(dfa.num_states):
        marks = ""
        if state == dfa.initial:
            marks += ">"
        if state in dfa.accepting:
            marks += "*"
        lines.append(f"state {state}{marks}:")
        merged: Dict[int, List[str]] = {}
        for assignment, target in dfa.mgr.paths(dfa.delta[state]):
            merged.setdefault(target, []).append(  # type: ignore[arg-type]
                _guard_text(assignment, names))
        for target in sorted(merged):
            for guard in merged[target]:
                lines.append(f"  --[{guard}]--> {target}")
    return "\n".join(lines)


def to_dot(dfa: SymbolicDfa,
           tracks: Optional[Mapping[Var, int]] = None,
           name: str = "automaton") -> str:
    """Graphviz dot source for the automaton."""
    names = _track_names(tracks)
    lines = [f"digraph {name} {{", "  rankdir=LR;",
             "  __start [shape=point];",
             f"  __start -> {dfa.initial};"]
    for state in range(dfa.num_states):
        shape = "doublecircle" if state in dfa.accepting else "circle"
        lines.append(f"  {state} [shape={shape}];")
    for state in range(dfa.num_states):
        merged: Dict[int, List[str]] = {}
        for assignment, target in dfa.mgr.paths(dfa.delta[state]):
            merged.setdefault(target, []).append(  # type: ignore[arg-type]
                _guard_text(assignment, names))
        for target, guards in merged.items():
            label = "\\n".join(guards)
            lines.append(f'  {state} -> {target} [label="{label}"];')
    lines.append("}")
    return "\n".join(lines)
