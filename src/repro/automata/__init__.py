"""Finite automata.

* :mod:`repro.automata.explicit` — textbook NFA/DFA over explicit
  alphabets.  Used to evaluate routing relations on concrete stores and
  as a brute-force oracle in the test suite.
* :mod:`repro.automata.symbolic` — deterministic automata over
  bit-vector alphabets with MTBDD-encoded transition functions, the
  Mona-style engine that decides M2L formulas (paper §6).
"""

from repro.automata.explicit import Dfa, Nfa, Regex
from repro.automata.symbolic import SymbolicDfa, SymbolicNfa
from repro.automata.render import render_transitions, to_dot

__all__ = ["Dfa", "Nfa", "Regex", "SymbolicDfa", "SymbolicNfa",
           "render_transitions", "to_dot"]
