"""Symbolic automata with MTBDD-encoded transition functions.

This is the Mona-style engine the paper's implementation rests on
(§6): a deterministic automaton over an alphabet of *bit vectors*.
Each bit position is a **track** (one per logical variable of an M2L
formula), and each state stores its entire transition function as one
multi-terminal BDD whose leaves are target states.  Operations that
would be exponential in the number of tracks on an explicit alphabet —
products, projections, minimisation — run directly on the shared
diagrams.

The alphabet is implicit: a symbol is any assignment of booleans to
tracks, and transition MTBDDs are total, so automata are always
complete.  Tracks that a transition does not test are don't-cares.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import (Callable, Dict, FrozenSet, Hashable, List, Mapping,
                    Optional, Sequence, Set, Tuple)

from repro.bdd.mtbdd import Mtbdd
from repro.obs import trace as obs_trace
from repro.robust import faults
from repro.robust.budget import check_states as _budget_check_states
from repro.robust.budget import tick as _budget_tick

Assignment = Mapping[int, bool]

_unique_counter = itertools.count()


def _fresh_key(tag: str) -> Tuple[str, int]:
    """A memoisation key that is unique per call site invocation."""
    return (tag, next(_unique_counter))


def delta_from_function(mgr: Mtbdd, tracks: Sequence[int],
                        fn: Callable[[Dict[int, bool]], Hashable]) -> int:
    """Build an MTBDD over ``tracks`` from an explicit function.

    ``fn`` receives a total assignment of the given tracks and returns
    the leaf value.  Intended for the small hand-written base automata
    of the M2L compiler, where ``len(tracks)`` is at most three.
    Duplicate tracks are allowed (an atom may mention one variable
    twice) and collapse to a single decision.
    """
    ordered = sorted(set(tracks))

    def build(index: int, acc: Dict[int, bool]) -> int:
        if index == len(ordered):
            return mgr.leaf(fn(dict(acc)))
        track = ordered[index]
        acc[track] = False
        lo = build(index + 1, acc)
        acc[track] = True
        hi = build(index + 1, acc)
        del acc[track]
        return mgr.node(track, lo, hi)

    return build(0, {})


@dataclass
class SymbolicDfa:
    """A complete DFA over bit-vector symbols.

    Attributes:
        mgr: the MTBDD manager owning all transition diagrams.
        num_states: states are ``0 .. num_states-1``.
        initial: the start state.
        accepting: the set of accepting states.
        delta: ``delta[q]`` is an MTBDD with integer (state) leaves.
    """

    mgr: Mtbdd
    num_states: int
    initial: int
    accepting: FrozenSet[int]
    delta: List[int]

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def step(self, state: int, symbol: Assignment) -> int:
        """The successor of ``state`` under one symbol."""
        result = self.mgr.evaluate(self.delta[state], dict(symbol))
        return result  # type: ignore[return-value]

    def accepts(self, word: Sequence[Assignment]) -> bool:
        """Membership of a word of track assignments."""
        state = self.initial
        for symbol in word:
            state = self.step(state, symbol)
        return state in self.accepting

    # ------------------------------------------------------------------
    # Boolean operations
    # ------------------------------------------------------------------

    def complement(self) -> "SymbolicDfa":
        """Language complement (automaton is complete by construction)."""
        return SymbolicDfa(
            mgr=self.mgr, num_states=self.num_states, initial=self.initial,
            accepting=frozenset(range(self.num_states)) - self.accepting,
            delta=self.delta)

    def product(self, other: "SymbolicDfa",
                accept: Callable[[bool, bool], bool]) -> "SymbolicDfa":
        """Reachable synchronous product.

        ``accept`` combines the two acceptance flags; use ``and`` for
        intersection, ``or`` for union, ``lambda a, b: a and not b``
        for difference.
        """
        if other.mgr is not self.mgr:
            raise ValueError("product requires a shared MTBDD manager")
        faults.fire("automata.product")
        with obs_trace.span("automata.product", detail=True) as sp:
            mgr = self.mgr
            pair_key = _fresh_key("pair")
            index: Dict[Tuple[int, int], int] = {}
            delta: List[int] = []
            accepting: Set[int] = set()
            order: List[Tuple[int, int]] = []

            def state_of(pair: Hashable) -> int:
                found = index.get(pair)  # type: ignore[arg-type]
                if found is None:
                    found = len(index)
                    index[pair] = found  # type: ignore[index]
                    order.append(pair)  # type: ignore[arg-type]
                return found

            start = state_of((self.initial, other.initial))
            cursor = 0
            rename_key = _fresh_key("pair-rename")
            while cursor < len(order):
                _budget_tick("automata.product")
                _budget_check_states("automata.product", len(order))
                left, right = order[cursor]
                pair_delta = mgr.apply2(pair_key, lambda a, b: (a, b),
                                        self.delta[left],
                                        other.delta[right])
                delta.append(mgr.map_leaves(rename_key, state_of,
                                            pair_delta))
                if accept(left in self.accepting,
                          right in other.accepting):
                    accepting.add(cursor)
                cursor += 1
            result = SymbolicDfa(mgr=mgr, num_states=len(order),
                                 initial=start,
                                 accepting=frozenset(accepting),
                                 delta=delta)
            if sp:
                sp.annotate(left_states=self.num_states,
                            right_states=other.num_states,
                            states=result.num_states,
                            nodes=result.bdd_node_count())
            return result

    def intersect(self, other: "SymbolicDfa") -> "SymbolicDfa":
        """Language intersection."""
        return self.product(other, lambda a, b: a and b)

    def union(self, other: "SymbolicDfa") -> "SymbolicDfa":
        """Language union."""
        return self.product(other, lambda a, b: a or b)

    def difference(self, other: "SymbolicDfa") -> "SymbolicDfa":
        """Language difference ``L(self) \\ L(other)``."""
        return self.product(other, lambda a, b: a and not b)

    # ------------------------------------------------------------------
    # Projection (existential quantification of one track)
    # ------------------------------------------------------------------

    def project(self, track: int) -> "SymbolicNfa":
        """Erase ``track``: each symbol may take either value for it.

        The result is nondeterministic; determinise to get back a DFA.
        This implements existential quantification in M2L.
        """
        with obs_trace.span("automata.project", detail=True,
                            track=track, states=self.num_states):
            mgr = self.mgr
            lift_key = _fresh_key("lift")
            union_key = _fresh_key("setunion")
            delta: List[int] = []
            for q in range(self.num_states):
                lo = mgr.restrict(self.delta[q], {track: False})
                hi = mgr.restrict(self.delta[q], {track: True})
                lo_set = mgr.map_leaves(lift_key,
                                        lambda s: frozenset([s]), lo)
                hi_set = mgr.map_leaves(lift_key,
                                        lambda s: frozenset([s]), hi)
                delta.append(mgr.apply2(union_key, lambda a, b: a | b,
                                        lo_set, hi_set))
            return SymbolicNfa(mgr=mgr, num_states=self.num_states,
                               initial=frozenset([self.initial]),
                               accepting=self.accepting, delta=delta)

    # ------------------------------------------------------------------
    # Minimisation
    # ------------------------------------------------------------------

    def trim(self) -> "SymbolicDfa":
        """Restrict to states reachable from the initial state."""
        reachable: Set[int] = {self.initial}
        stack = [self.initial]
        while stack:
            q = stack.pop()
            for target in self.mgr.leaves(self.delta[q]):
                if target not in reachable:
                    reachable.add(target)  # type: ignore[arg-type]
                    stack.append(target)  # type: ignore[arg-type]
        if len(reachable) == self.num_states:
            return self
        remap = {old: new for new, old in enumerate(sorted(reachable))}
        rename_key = _fresh_key("trim")
        delta = [self.mgr.map_leaves(rename_key, lambda s: remap[s],
                                     self.delta[old])
                 for old in sorted(reachable)]
        return SymbolicDfa(
            mgr=self.mgr, num_states=len(reachable),
            initial=remap[self.initial],
            accepting=frozenset(remap[q] for q in self.accepting
                                if q in remap),
            delta=delta)

    def minimize(self) -> "SymbolicDfa":
        """Moore partition refinement with hash-consed signatures.

        Two states are merged when they are acceptance-equivalent and
        their transition MTBDDs, with leaves rewritten to current block
        numbers, are the *same diagram* — an O(1) comparison thanks to
        hash-consing.
        """
        faults.fire("automata.minimize")
        with obs_trace.span("automata.minimize", detail=True) as sp:
            result = self._minimize()
            if sp:
                sp.annotate(states_before=self.num_states,
                            states=result.num_states,
                            nodes=result.bdd_node_count())
            return result

    def _minimize(self) -> "SymbolicDfa":
        dfa = self.trim()
        mgr = dfa.mgr
        block = [1 if q in dfa.accepting else 0
                 for q in range(dfa.num_states)]
        num_blocks = len(set(block))
        while True:
            _budget_tick("automata.minimize")
            sig_key = _fresh_key("moore")
            signatures = [
                (block[q], mgr.map_leaves(sig_key, lambda s: block[s],
                                          dfa.delta[q]))
                for q in range(dfa.num_states)]
            renumber: Dict[Tuple[int, int], int] = {}
            new_block = []
            for sig in signatures:
                if sig not in renumber:
                    renumber[sig] = len(renumber)
                new_block.append(renumber[sig])
            stable = len(renumber) == num_blocks
            block = new_block
            num_blocks = len(renumber)
            if stable:
                break
        # Canonical numbering: block of the initial state first is not
        # required; keep discovery order of blocks.
        representative: Dict[int, int] = {}
        for q in range(dfa.num_states):
            representative.setdefault(block[q], q)
        rename_key = _fresh_key("moore-rename")
        delta = [mgr.map_leaves(rename_key, lambda s: block[s],
                                dfa.delta[representative[b]])
                 for b in range(num_blocks)]
        accepting = frozenset(block[q] for q in dfa.accepting)
        return SymbolicDfa(mgr=mgr, num_states=num_blocks,
                           initial=block[dfa.initial],
                           accepting=accepting, delta=delta)

    # ------------------------------------------------------------------
    # Decision queries
    # ------------------------------------------------------------------

    def is_empty(self) -> bool:
        """True iff the accepted language is empty."""
        return self.shortest_accepted() is None

    def is_universal(self) -> bool:
        """True iff every word (over all assignments) is accepted."""
        return self.complement().is_empty()

    def shortest_accepted(self) -> Optional[List[Dict[int, bool]]]:
        """A shortest accepted word, or None when the language is empty.

        Each symbol in the result is a partial assignment; tracks absent
        from it are don't-cares (callers may fix them to False).
        """
        if self.initial in self.accepting:
            return []
        parent: Dict[int, Tuple[int, Dict[int, bool]]] = {}
        seen = {self.initial}
        queue = deque([self.initial])
        while queue:
            _budget_tick("automata.universality")
            state = queue.popleft()
            for assignment, target in self.mgr.paths(self.delta[state]):
                if target in seen:
                    continue
                seen.add(target)  # type: ignore[arg-type]
                parent[target] = (state, assignment)  # type: ignore[index]
                if target in self.accepting:
                    word: List[Dict[int, bool]] = []
                    cursor = target
                    while cursor != self.initial:
                        prev, via = parent[cursor]  # type: ignore[index]
                        word.append(via)
                        cursor = prev
                    word.reverse()
                    return word
                queue.append(target)  # type: ignore[arg-type]
        return None

    def includes(self, other: "SymbolicDfa") -> bool:
        """True iff ``L(other) ⊆ L(self)``."""
        return other.difference(self).is_empty()

    def equivalent(self, other: "SymbolicDfa") -> bool:
        """Language equality."""
        return self.includes(other) and other.includes(self)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def bdd_node_count(self) -> int:
        """Distinct decision nodes shared across all transition MTBDDs.

        This is the paper's "Nodes" column for a single automaton.
        """
        seen: Set[int] = set()
        count = 0
        stack = list(self.delta)
        mgr = self.mgr
        while stack:
            f = stack.pop()
            if f in seen:
                continue
            seen.add(f)
            if not mgr.is_leaf(f):
                count += 1
                stack.append(mgr.low(f))
                stack.append(mgr.high(f))
        return count

    def tracks(self) -> FrozenSet[int]:
        """All tracks any transition tests."""
        result: Set[int] = set()
        for root in self.delta:
            result |= self.mgr.support(root)
        return frozenset(result)


@dataclass
class SymbolicNfa:
    """A nondeterministic symbolic automaton.

    ``delta[q]`` is an MTBDD whose leaves are frozensets of target
    states.  Produced by :meth:`SymbolicDfa.project`; consumed by
    :meth:`determinize`.
    """

    mgr: Mtbdd
    num_states: int
    initial: FrozenSet[int]
    accepting: FrozenSet[int]
    delta: List[int]

    def determinize(self) -> SymbolicDfa:
        """Subset construction directly on the shared diagrams."""
        faults.fire("automata.determinize")
        with obs_trace.span("automata.determinize", detail=True) as sp:
            result = self._determinize()
            if sp:
                sp.annotate(nfa_states=self.num_states,
                            states=result.num_states,
                            nodes=result.bdd_node_count())
            return result

    def _determinize(self) -> SymbolicDfa:
        mgr = self.mgr
        union_key = _fresh_key("det-union")
        rename_key = _fresh_key("det-rename")
        empty = mgr.leaf(frozenset())
        index: Dict[FrozenSet[int], int] = {}
        order: List[FrozenSet[int]] = []

        def state_of(subset: Hashable) -> int:
            found = index.get(subset)  # type: ignore[arg-type]
            if found is None:
                found = len(index)
                index[subset] = found  # type: ignore[index]
                order.append(subset)  # type: ignore[arg-type]
            return found

        state_of(self.initial)
        delta: List[int] = []
        accepting: Set[int] = set()
        cursor = 0
        while cursor < len(order):
            _budget_tick("automata.determinize")
            _budget_check_states("automata.determinize", len(order))
            subset = order[cursor]
            combined = empty
            for q in subset:
                combined = mgr.apply2(union_key, lambda a, b: a | b,
                                      combined, self.delta[q])
            delta.append(mgr.map_leaves(rename_key, state_of, combined))
            if subset & self.accepting:
                accepting.add(cursor)
            cursor += 1
        return SymbolicDfa(mgr=mgr, num_states=len(order), initial=0,
                           accepting=frozenset(accepting), delta=delta)
