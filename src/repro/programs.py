"""The paper's example programs (§2, §4, §5), as annotated sources.

Each program uses the paper's list type::

    Color = (red, blue);
    List  = ^Item;
    Item  = record case tag: Color of red, blue: (next: List) end;

Notes on fidelity (details in EXPERIMENTS.md):

* routing relations are written with ``next*`` / ``next+`` as in the
  paper; variant tests use the pointer-type spelling ``(List:red)?``;
* ``delete``'s body is reconstructed from the paper's (OCR-damaged)
  listing; the head-deletion branch additionally clears ``p``, without
  which the paper's own well-formedness requirement cannot hold (the
  disposed head would leave ``p`` dangling when ``p = x``);
* ``delete``'s "exactly one cell freed" postcondition additionally
  assumes a garbage-free initial store, which the paper leaves
  implicit;
* ``fumble`` is ``reverse`` with its second and third loop statements
  swapped, and ``swap`` dereferences nil on singleton lists — both are
  the paper's intended failures; ``swap_fixed`` adds the precondition
  ``x^.next <> nil`` under which ``swap`` verifies (§5).
"""

from __future__ import annotations

from typing import Dict

LIST_TYPES = """\
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;
"""

#: §5 — in-situ list reversal; the default invariant suffices.
REVERSE = f"""\
program reverse;
{LIST_TYPES}
{{data}} var x, y: List;
{{pointer}} var p: List;
begin
  {{y = nil}}
  while x <> nil do begin
    p := x^.next;
    x^.next := y;
    y := x;
    x := p
  end
  {{x = nil}}
end.
"""

#: §5 — cyclic rotation of x, where p points to the last element.
ROTATE = f"""\
program rotate;
{LIST_TYPES}
{{data}} var x: List;
{{pointer}} var p: List;
begin
  {{x<next*>p & (x <> nil => p^.next = nil)}}
  if x <> nil then begin
    p^.next := x;
    x := x^.next;
    p := p^.next;
    p^.next := nil
  end
  {{x<next*>p & (x <> nil => p^.next = nil)}}
end.
"""

#: §5 — insert a red node after position p (at the front when p=nil).
INSERT = f"""\
program insert;
{LIST_TYPES}
{{data}} var x: List;
{{pointer}} var p, q: List;
begin
  {{x<next*>p & (x = nil <=> p = nil)}}
  if p <> nil then begin
    q := p^.next;
    new(p^.next, red);
    p := p^.next;
    p^.next := q
  end else begin
    q := x;
    new(x, red);
    p := x;
    p^.next := q
  end
  {{x<next*>p & p <> nil & <(List:red)?>p}}
end.
"""

#: §5 — delete the node after p (the head when p is last); frees
#: exactly one cell when the list was nonempty.
DELETE = f"""\
program delete;
{LIST_TYPES}
{{data}} var x: List;
{{pointer}} var p, q: List;
begin
  {{x<next*>p & (x = nil <=> p = nil) & ~(ex g: <garb?>g)}}
  if p <> nil then begin
    if p^.next = nil then begin
      q := x^.next;
      if x^.tag = red then dispose(x, red) else dispose(x, blue);
      x := q;
      p := nil
    end else begin
      q := p^.next^.next;
      if p^.next^.tag = red then dispose(p^.next, red)
      else dispose(p^.next, blue);
      p^.next := q
    end
  end
  {{(x = nil & p = nil & ~(ex g: <garb?>g))
    | (ex g: <garb?>g & (all r: <garb?>r => r = g))}}
end.
"""

#: §5 — find the first blue node; the rich invariant verifies the
#: full behavioural specification, not just well-formedness.
SEARCH = f"""\
program search;
{LIST_TYPES}
{{data}} var x: List;
{{pointer}} var p: List;
begin
  p := x;
  while p <> nil and p^.tag <> blue do
    {{x<next*>p & (all q: (x<next*>q & q<next+>p) => <(List:red)?>q)}}
    p := p^.next
  {{x<next*>p & (p = nil | <(List:blue)?>p)
    & (all q: (x<next*>q & q<next+>p) => <(List:red)?>q)}}
end.
"""

#: §5 — like SEARCH but with no invariant: only well-formedness (the
#: system default) is verified.  Used by the ablation benchmark.
SEARCH_DEFAULT_INVARIANT = f"""\
program searchwf;
{LIST_TYPES}
{{data}} var x: List;
{{pointer}} var p: List;
begin
  p := x;
  while p <> nil and p^.tag <> blue do
    p := p^.next
end.
"""

#: §5 — zip two lists by strict shuffle, appending the longer tail.
ZIP = f"""\
program zip;
{LIST_TYPES}
{{data}} var x, y, z: List;
{{pointer}} var p, t: List;
begin
  {{z = nil}}
  if x = nil then begin t := x; x := y; y := t end;
  p := nil;
  while x <> nil do
    {{(x = nil => y = nil) & z<next*>p & (z <> nil => p^.next = nil)}}
    begin
      if z = nil then begin
        z := x;
        p := x
      end else begin
        p^.next := x;
        p := p^.next
      end;
      x := x^.next;
      p^.next := nil;
      if y <> nil then begin t := x; x := y; y := t end
    end
  {{x = nil & y = nil}}
end.
"""

#: §5 — the reverse program with lines 2 and 3 of the loop swapped: a
#: "likely mistake" that creates a cycle.  Fails verification with a
#: one-cell counterexample.
FUMBLE = f"""\
program fumble;
{LIST_TYPES}
{{data}} var x, y: List;
{{pointer}} var p: List;
begin
  {{y = nil}}
  while x <> nil do begin
    p := x^.next;
    y := x;
    x^.next := y;
    x := p
  end
  {{x = nil}}
end.
"""

#: §5 — swap the first two list elements; dereferences nil on a
#: singleton list.  Fails with the length-one counterexample.
SWAP = f"""\
program swap;
{LIST_TYPES}
{{data}} var x: List;
{{pointer}} var p: List;
begin
  if x <> nil then begin
    p := x;
    x := x^.next;
    p^.next := x^.next;
    x^.next := p
  end
end.
"""

#: §5 — swap with the precondition that excludes the singleton case;
#: verifies.
SWAP_FIXED = f"""\
program swapfix;
{LIST_TYPES}
{{data}} var x: List;
{{pointer}} var p: List;
begin
  {{x^.next <> nil}}
  if x <> nil then begin
    p := x;
    x := x^.next;
    p^.next := x^.next;
    x^.next := p
  end
end.
"""

#: §4 — the worked loop-free triple (new/initialise/link at the end
#: of a list).
TRIPLE = f"""\
program triple;
{LIST_TYPES}
{{data}} var x: List;
{{pointer}} var p, q: List;
begin
  {{x<next*>p & p^.next = nil}}
  new(q, blue);
  q^.next := nil;
  p^.next := q
  {{x<next*>q & q^.next = nil & p <> q}}
end.
"""

#: Extended corpus (ours): classic list algorithms beyond the paper's
#: six, written and annotated in the same style.

#: Destructively append list y to list x; y releases ownership.
APPEND = f"""\
program append;
{LIST_TYPES}
{{data}} var x, y: List;
{{pointer}} var p: List;
begin
  {{x <> nil}}
  p := x;
  while p^.next <> nil do
    {{x<next*>p & p <> nil}}
    p := p^.next;
  p^.next := y;
  y := nil
  {{y = nil & x<next*>p & p <> nil}}
end.
"""

#: Destructively partition x by colour: reds onto y, blues onto z.
SPLIT = f"""\
program split;
{LIST_TYPES}
{{data}} var x, y, z: List;
{{pointer}} var p: List;
begin
  {{y = nil & z = nil}}
  while x <> nil do
    {{(all c: (y<next*>c & c <> nil) => <(List:red)?>c)
      & (all c: (z<next*>c & c <> nil) => <(List:blue)?>c)}}
    begin
    p := x;
    x := x^.next;
    if p^.tag = red then begin p^.next := y; y := p end
    else begin p^.next := z; z := p end
  end
  {{x = nil
    & (all c: (y<next*>c & c <> nil) => <(List:red)?>c)
    & (all c: (z<next*>c & c <> nil) => <(List:blue)?>c)}}
end.
"""

#: Copy the shape of x into a fresh list y (colour-preserving code;
#: the logic cannot relate the two lists pointwise, so the verified
#: contract is memory safety plus the tail discipline).
COPY = f"""\
program copy;
{LIST_TYPES}
{{data}} var x, y: List;
{{pointer}} var p, q: List;
begin
  {{y = nil & q = nil}}
  p := x;
  while p <> nil do
    {{x<next*>p & y<next*>q & (y = nil <=> q = nil)
      & (q <> nil => q^.next = nil)
      & (y = nil => p = x) & (x = nil => y = nil)}}
    begin
    if y = nil then begin
      if p^.tag = red then new(y, red) else new(y, blue);
      q := y
    end else begin
      if p^.tag = red then new(q^.next, red)
      else new(q^.next, blue);
      q := q^.next
    end;
    q^.next := nil;
    p := p^.next
  end
  {{p = nil & (x = nil <=> y = nil)
    & (q <> nil => q^.next = nil)}}
end.
"""

#: Walk to the last element with a trailing cursor, then clear it.
#: No annotations: only well-formedness (the system default) is
#: verified.  The trailing cursor ``t`` feeds no obligation, so every
#: subgoal's slice drops its copies — the showcase program for the
#: statement-level backward slice (``repro analyze scan``).
SCAN = f"""\
program scan;
{LIST_TYPES}
{{data}} var x: List;
{{pointer}} var p, t: List;
begin
  t := x;
  p := x;
  while p <> nil do begin
    t := p;
    p := p^.next
  end;
  t := nil
end.
"""

#: Programs the paper reports in the §6 statistics table.
TABLE_PROGRAMS: Dict[str, str] = {
    "reverse": REVERSE,
    "rotate": ROTATE,
    "insert": INSERT,
    "delete": DELETE,
    "search": SEARCH,
    "zip": ZIP,
}

#: The extended corpus (ours, not in the paper).
EXTENDED_PROGRAMS: Dict[str, str] = {
    "append": APPEND,
    "split": SPLIT,
    "copy": COPY,
    "scan": SCAN,
}

#: All named example programs.
ALL_PROGRAMS: Dict[str, str] = {
    **TABLE_PROGRAMS,
    "searchwf": SEARCH_DEFAULT_INVARIANT,
    "fumble": FUMBLE,
    "swap": SWAP,
    "swapfix": SWAP_FIXED,
    "triple": TRIPLE,
    **EXTENDED_PROGRAMS,
}

#: Programs the paper shows failing, with their §5 counterexamples.
FAULTY_PROGRAMS: Dict[str, str] = {
    "fumble": FUMBLE,
    "swap": SWAP,
}


def load_source(name_or_path: str) -> str:
    """Resolve a bundled program name or a filesystem path to source.

    The CLI and the parallel table workers share this: a worker
    process receives only the name/path, so loading must be a pure
    function of it.
    """
    if name_or_path in ALL_PROGRAMS:
        return ALL_PROGRAMS[name_or_path]
    with open(name_or_path, "r", encoding="utf-8") as handle:
        return handle.read()
