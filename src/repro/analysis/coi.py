"""Cone-of-influence: which variables can affect a subgoal's verdict.

A subgoal (:class:`repro.verify.engine.Subgoal`) checks obligations
over the store reached by a loop-free statement sequence, under
assumed obligations over the initial store, plus the two
well-formedness predicates.  A pointer variable whose value cannot
reach any obligation — through assignments, dereferences, heap writes
or control flow — contributes a full automaton track for nothing; the
verifier drops it (:class:`repro.symbolic.layout.TrackLayout` with a
``variables`` subset) and assumes it nil initially.

The pass is a backward may-influence analysis over the statements:

* the seed set is every variable free in a check formula or a loop
  guard obligation — conditions read from the *final* store, which is
  why assignments in between may kill them; variables of assume
  formulas are read from the *initial* store and join the keep set
  after the pass, untouched by kills (an assignment downstream cannot
  make the initial value irrelevant: dropping the track would pin the
  variable to nil in the initial store and change what the assumption
  means);
* ``v := path`` kills ``v`` and gens the path's variable (when ``v``
  is relevant); any dereference also gens its base unconditionally,
  because a dereference can *fail* and the error outcome is always
  checked;
* heap writes (``cell^.f := ...``) and ``new`` through a field gen
  their cell path unconditionally — they change the heap every later
  obligation reads;
* branch guards gen their variables unconditionally (they decide
  which effects happen, and evaluating them can fail).

Two classes of variables are never dropped:

* **data variables** — their segments carry the string encoding's
  structure, so removing their tracks changes well-formedness itself;
* **everything, when the statements dispose** — ``dispose`` can leave
  an otherwise-irrelevant variable dangling, which only that
  variable's ``wf_graph`` conjunct notices.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Sequence

from repro.pascal.typed import (FieldLhs, TAnd, TAssign, TDispose, TGuard,
                                TIf, TNew, TNot, TOr, TPath, TPtrCompare,
                                TVariantTest, VarLhs)
from repro.stores.schema import Schema


def cone_of_influence(statements: Sequence[object],
                      seeds: Iterable[str],
                      schema: Schema,
                      assume_seeds: Iterable[str] = ()
                      ) -> FrozenSet[str]:
    """The variables that can influence the seeds through the
    (loop-free) statements; always includes the data variables.

    ``seeds`` are read from the store *after* the statements (check
    obligations) and flow backward through kills; ``assume_seeds`` are
    read from the *initial* store (assume obligations) and are kept
    unconditionally — an assignment in the statements must not hide
    them."""
    if _disposes(statements):
        return frozenset(schema.all_vars())
    relevant = frozenset(seeds) | frozenset(schema.data_vars)
    return _backward(statements, relevant) | frozenset(assume_seeds)


def guard_vars(guard: TGuard) -> FrozenSet[str]:
    """All variables a guard expression mentions."""
    if isinstance(guard, TPtrCompare):
        return _path_vars(guard.left) | _path_vars(guard.right)
    if isinstance(guard, TVariantTest):
        return frozenset([guard.cell.var])
    if isinstance(guard, (TAnd, TOr)):
        return guard_vars(guard.left) | guard_vars(guard.right)
    if isinstance(guard, TNot):
        return guard_vars(guard.inner)
    raise TypeError(f"unknown guard node {guard!r}")


def _path_vars(path) -> FrozenSet[str]:
    if path is None:
        return frozenset()
    return frozenset([path.var])


def _disposes(statements: Sequence[object]) -> bool:
    for statement in statements:
        if isinstance(statement, TDispose):
            return True
        if isinstance(statement, TIf) and (
                _disposes(statement.then_body)
                or _disposes(statement.else_body)):
            return True
    return False


def _backward(statements: Sequence[object],
              relevant: FrozenSet[str]) -> FrozenSet[str]:
    for statement in reversed(statements):
        relevant = _transfer(statement, relevant)
    return relevant


def _transfer(statement: object,
              relevant: FrozenSet[str]) -> FrozenSet[str]:
    if isinstance(statement, TAssign):
        return _assign(statement.lhs, statement.rhs, relevant)
    if isinstance(statement, TNew):
        # Allocation picks the first garbage cell deterministically —
        # no variable feeds the chosen value or the oom outcome.
        if isinstance(statement.lhs, VarLhs):
            return relevant - {statement.lhs.name}
        return relevant | {statement.lhs.cell.var}
    if isinstance(statement, TDispose):
        # Only reached when the caller skipped the dispose guard in
        # cone_of_influence; stay conservative.
        return relevant | {statement.path.var}
    if isinstance(statement, TIf):
        joined = _backward(statement.then_body, relevant) \
            | _backward(statement.else_body, relevant)
        return joined | guard_vars(statement.cond)
    raise TypeError(
        f"cone of influence expects loop-free statements, "
        f"got {statement!r}")


def _assign(lhs: object, rhs: object,
            relevant: FrozenSet[str]) -> FrozenSet[str]:
    if isinstance(lhs, FieldLhs):
        gen = {lhs.cell.var}
        if rhs is not None:
            gen.add(rhs.var)
        return relevant | gen
    assert isinstance(lhs, VarLhs)
    result = relevant
    if isinstance(rhs, TPath) and rhs.steps:
        # The dereference can fail; its base always matters.
        result = result | {rhs.var}
    if lhs.name in result:
        result = result - {lhs.name}
        if rhs is not None:
            result = result | {rhs.var}
    return result
