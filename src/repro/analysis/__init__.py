"""Static analysis front-end: CFGs, dataflow, lints, cone of influence.

The package serves two consumers: the ``repro lint`` CLI subcommand
(:func:`lint_source` / :func:`lint_program`), and the verifier's
cone-of-influence track reduction (:func:`cone_of_influence`), which
drops automaton tracks for variables that cannot affect a subgoal's
obligations.
"""

from repro.analysis.cfg import CFG, Edge, Node, from_program, \
    from_statements
from repro.analysis.coi import cone_of_influence, guard_vars
from repro.analysis.dataflow import Analysis, DataflowResult, solve
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.lints import lint_program, lint_source

__all__ = [
    "Analysis",
    "CFG",
    "DataflowResult",
    "Diagnostic",
    "Edge",
    "Node",
    "Severity",
    "cone_of_influence",
    "from_program",
    "from_statements",
    "guard_vars",
    "lint_program",
    "lint_source",
    "solve",
]
