"""Static analysis front-end: CFGs, dataflow, lints, slicing, ordering.

The package serves three consumers: the ``repro lint`` CLI subcommand
(:func:`lint_source` / :func:`lint_program`); the verifier's subgoal
preparation — cone-of-influence track reduction
(:func:`cone_of_influence`), statement-level backward slicing
(:func:`slice_statements`) and dependency-driven BDD track ordering
(:func:`choose_order`); and the verdict cache, which keys subgoals by
the content fingerprints of :mod:`repro.analysis.fingerprint`.
"""

from repro.analysis.cfg import CFG, Edge, Node, from_program, \
    from_statements
from repro.analysis.coi import cone_of_influence, guard_vars
from repro.analysis.dataflow import Analysis, DataflowResult, solve
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.fingerprint import (CACHE_SCHEMA_VERSION,
                                        canonical_schema,
                                        canonical_statements,
                                        code_fingerprint,
                                        subgoal_fingerprint)
from repro.analysis.lints import lint_program, lint_source
from repro.analysis.order import affinity_graph, choose_order
from repro.analysis.slice import (SliceResult, dropped_statements,
                                  slice_statements, statement_count)

__all__ = [
    "Analysis",
    "CACHE_SCHEMA_VERSION",
    "CFG",
    "DataflowResult",
    "Diagnostic",
    "Edge",
    "Node",
    "Severity",
    "SliceResult",
    "affinity_graph",
    "canonical_schema",
    "canonical_statements",
    "choose_order",
    "code_fingerprint",
    "cone_of_influence",
    "dropped_statements",
    "from_program",
    "from_statements",
    "guard_vars",
    "lint_program",
    "lint_source",
    "slice_statements",
    "solve",
    "statement_count",
    "subgoal_fingerprint",
]
