"""Content-addressed fingerprints of (sliced subgoal, obligation) pairs.

The verdict cache (:mod:`repro.verify.cache`) must key a subgoal by
*what is decided*, not where it sits in the source: editing an
unrelated part of a program — or just reflowing it so line numbers
shift — must still hit the cache for every subgoal whose sliced
statements and obligations are unchanged.  The canonical form
therefore contains no line or column information:

* the **schema** — enums, record types with their variants and
  pointer fields, and the data/pointer variable declarations in
  order (the string encoding depends on declaration order, so order
  is significant);
* the **statements**, serialised recursively from the typed IR's own
  line-free syntax (the engine hashes the originals — the slice, cone
  and order are deterministic functions of them, and the
  counterexample simulation reads the originals directly);
* the **obligations** — each assume/check item's canonical key: the
  pretty-printed assertion formula (re-parseable, line-free) or the
  guard condition text, never the display name (which embeds line
  numbers);
* the **engine options** that change anything the cached result
  records (reduction, slicing, ordering, minimisation, simulation,
  tracing) — a hit must be byte-for-byte the result the engine would
  have recomputed;
* the **code fingerprint** — a digest over every source file of the
  ``repro`` package, so any engine change invalidates the whole store
  rather than serving results computed by different code.
"""

from __future__ import annotations

import hashlib
import os
from typing import Iterable, List, Sequence

from repro.pascal.typed import (TAssertStmt, TAssign, TDispose, TIf,
                                TNew, TWhile)
from repro.stores.schema import Schema

#: Bump when the cached value format or this canonicalization changes.
CACHE_SCHEMA_VERSION = 1

_code_digest: List[str] = []


def canonical_schema(schema: Schema) -> str:
    """A line-free, order-preserving rendering of the schema."""
    parts = []
    for name, constants in schema.enums.items():
        parts.append(f"enum {name}=({','.join(constants)})")
    for record in schema.records.values():
        variants = []
        for variant, info in record.variants.items():
            field = "" if info is None else f"^{info.name}:{info.target}"
            variants.append(f"{variant}{field}")
        parts.append(f"record {record.name}"
                     f"[{record.tag_field}:{record.tag_type}]"
                     f"({';'.join(variants)})")
    for name, target in schema.data_vars.items():
        parts.append(f"data {name}:{target}")
    for name, target in schema.pointer_vars.items():
        parts.append(f"ptr {name}:{target}")
    return "\n".join(parts)


def canonical_statements(statements: Sequence[object]) -> str:
    """Line-free serialization of a (loop-free or full) statement
    sequence, recursing into conditionals and loops."""
    return ";".join(_statement(statement) for statement in statements)


def _statement(statement: object) -> str:
    if isinstance(statement, TIf):
        return (f"if {statement.cond} then "
                f"[{canonical_statements(statement.then_body)}] else "
                f"[{canonical_statements(statement.else_body)}]")
    if isinstance(statement, TWhile):
        invariant = "" if statement.invariant is None \
            else statement.invariant.text
        return (f"while {statement.cond} inv [{invariant}] do "
                f"[{canonical_statements(statement.body)}]")
    if isinstance(statement, TAssertStmt):
        return f"assert [{statement.annotation.text}]"
    assert isinstance(statement, (TAssign, TNew, TDispose)), statement
    # These nodes' own renderings carry no position information.
    return str(statement)


def subgoal_fingerprint(schema: Schema,
                        statements: Sequence[object],
                        assume_keys: Iterable[str],
                        check_keys: Iterable[str],
                        options: Sequence[object]) -> str:
    """The content hash naming one (sliced subgoal, obligation) pair."""
    digest = hashlib.sha256()
    for chunk in (
            f"cache-schema:{CACHE_SCHEMA_VERSION}",
            f"code:{code_fingerprint()}",
            f"options:{'|'.join(str(item) for item in options)}",
            canonical_schema(schema),
            canonical_statements(statements),
            "assume:" + "&".join(assume_keys),
            "check:" + "&".join(check_keys)):
        digest.update(chunk.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def code_fingerprint() -> str:
    """A digest over every ``repro`` source file, computed once per
    process.  Any code change yields a different cache namespace."""
    if _code_digest:
        return _code_digest[0]
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    digest = hashlib.sha256()
    for directory, subdirs, files in sorted(os.walk(root)):
        subdirs.sort()
        for name in sorted(files):
            if not name.endswith(".py"):
                continue
            path = os.path.join(directory, name)
            digest.update(os.path.relpath(path, root).encode("utf-8"))
            with open(path, "rb") as handle:
                digest.update(handle.read())
            digest.update(b"\x00")
    _code_digest.append(digest.hexdigest()[:16])
    return _code_digest[0]
