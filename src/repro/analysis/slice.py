"""Statement-level backward slicing of loop-free subgoals.

PR 2's cone of influence (:mod:`repro.analysis.coi`) shrinks a
subgoal's *alphabet*: tracks of variables that cannot reach an
obligation are dropped.  This pass shrinks the subgoal's *program*:
statements whose only effect is a value no obligation can observe are
removed before symbolic execution, so the transduction wraps fewer
predicates and the compiled automata stay smaller still.

The slice is computed by per-point backward liveness (the same
discipline as the ``dead-assignment`` lint, specialised to one
loop-free triple), seeded with the variables free in the subgoal's
*check* obligations plus every data variable.  Assume obligations read
the **initial** store, so — exactly as in the cone-of-influence pass —
they are irrelevant here: removing a statement never changes what the
initial store satisfies.

Soundness rules (why a dropped statement cannot change the verdict;
``docs/ARCHITECTURE.md`` §11 carries the full argument):

* only pure variable copies are droppable — ``v := nil`` or
  ``v := u`` with a step-free right-hand side.  Dereferencing
  assignments can *fail* (the ``~error`` conjunct observes them),
  heap writes change the graph every obligation reads, ``new`` has
  the ``oom`` outcome and relabels a cell, and ``dispose`` both
  relabels and can leave dangling pointers;
* a droppable copy is dropped iff its target is **dead**: not live
  into any check obligation or any kept later statement.  The final
  value of ``v`` then only feeds ``wf_graph``'s per-variable target
  conjunct, which holds either way — without ``dispose`` every value
  a variable can hold is nil or a correctly-typed cell;
* nothing is sliced when the statements dispose (mirroring the
  cone-of-influence rule: ``dispose`` makes *every* variable's final
  value observable through dangling-pointer well-formedness);
* a conditional is dropped whole only when both sliced branches are
  empty **and** its guard cannot fail (every atom is a pointer
  comparison of step-free paths; a variant test always dereferences).
  A kept conditional keeps its guard variables live and slices each
  branch against the join's liveness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Sequence, Tuple

from repro.analysis.coi import guard_vars
from repro.pascal.typed import (FieldLhs, TAnd, TAssign, TDispose, TIf,
                                TNew, TNot, TOr, TPath, TPtrCompare,
                                VarLhs)
from repro.stores.schema import Schema


@dataclass(frozen=True)
class SliceResult:
    """One subgoal's slice: the kept statements and the counts the
    reports and metrics surface."""

    statements: Tuple[object, ...]
    #: Statements of the original subgoal, counted recursively.
    before: int
    #: Statements of the slice, counted recursively.
    after: int

    @property
    def dropped(self) -> int:
        return self.before - self.after


def slice_statements(statements: Sequence[object],
                     check_seeds: Iterable[str],
                     schema: Schema) -> SliceResult:
    """Slice a loop-free statement sequence against the variables the
    check obligations read (data variables are always live)."""
    original = tuple(statements)
    before = statement_count(original)
    if _disposes(original):
        return SliceResult(original, before, before)
    live = frozenset(check_seeds) | frozenset(schema.data_vars)
    kept, _ = _slice_backward(original, live)
    return SliceResult(tuple(kept), before, statement_count(kept))


def dropped_statements(original: Sequence[object],
                       kept: Sequence[object]) -> List[object]:
    """The leaf statements of ``original`` missing from ``kept``, in
    source order (``repro analyze`` reporting).

    Kept statements appear in ``kept`` in their original order, and
    leaves are kept by identity; a conditional is matched structurally
    (the slicer rebuilds it around its sliced branches)."""
    result: List[object] = []
    index = 0
    kept = list(kept)
    for statement in original:
        match = kept[index] if index < len(kept) else None
        if isinstance(statement, TIf):
            if isinstance(match, TIf) and match.line == statement.line:
                result += dropped_statements(statement.then_body,
                                             match.then_body)
                result += dropped_statements(statement.else_body,
                                             match.else_body)
                index += 1
            else:
                result += dropped_statements(statement.then_body, ())
                result += dropped_statements(statement.else_body, ())
        elif match is statement:
            index += 1
        else:
            result.append(statement)
    return result


def statement_count(statements: Sequence[object]) -> int:
    """Statements counted recursively (a conditional counts itself
    plus both branches)."""
    total = 0
    for statement in statements:
        total += 1
        if isinstance(statement, TIf):
            total += statement_count(statement.then_body)
            total += statement_count(statement.else_body)
    return total


def _disposes(statements: Sequence[object]) -> bool:
    for statement in statements:
        if isinstance(statement, TDispose):
            return True
        if isinstance(statement, TIf) and (
                _disposes(statement.then_body)
                or _disposes(statement.else_body)):
            return True
    return False


def _slice_backward(statements: Sequence[object],
                    live: FrozenSet[str]
                    ) -> Tuple[List[object], FrozenSet[str]]:
    """Slice one straight-line (possibly branching) sequence against
    the live-out set; returns (kept statements, live-in set)."""
    kept: List[object] = []
    for statement in reversed(statements):
        keep, live = _transfer(statement, live)
        if keep is not None:
            kept.append(keep)
    kept.reverse()
    return kept, live


def _transfer(statement: object, live: FrozenSet[str]):
    """One backward step: (kept statement or None, live-before)."""
    if isinstance(statement, TAssign):
        return _transfer_assign(statement, live)
    if isinstance(statement, TNew):
        # new() is never droppable: the oom outcome joins the assume
        # side and the relabelled cell changes the heap every
        # obligation reads.  A variable target is still a kill.
        if isinstance(statement.lhs, VarLhs):
            return statement, live - {statement.lhs.name}
        return statement, live | {statement.lhs.cell.var}
    if isinstance(statement, TDispose):
        # Only reachable when the caller skipped the dispose guard;
        # keep it and stay conservative.
        return statement, live | {statement.path.var}
    if isinstance(statement, TIf):
        then_kept, then_live = _slice_backward(statement.then_body, live)
        else_kept, else_live = _slice_backward(statement.else_body, live)
        if not then_kept and not else_kept and \
                _guard_cannot_fail(statement.cond):
            # Both branches sliced empty and the guard cannot error:
            # the conditional has no observable effect at all.
            return None, live
        replacement = TIf(cond=statement.cond,
                          then_body=tuple(then_kept),
                          else_body=tuple(else_kept),
                          line=statement.line)
        return replacement, \
            then_live | else_live | guard_vars(statement.cond)
    raise TypeError(
        f"slicing expects loop-free statements, got {statement!r}")


def _transfer_assign(statement: TAssign, live: FrozenSet[str]):
    lhs, rhs = statement.lhs, statement.rhs
    if isinstance(lhs, FieldLhs):
        gen = {lhs.cell.var}
        if rhs is not None:
            gen.add(rhs.var)
        return statement, live | gen
    assert isinstance(lhs, VarLhs)
    derefs = isinstance(rhs, TPath) and bool(rhs.steps)
    if not derefs and lhs.name not in live:
        # A dead pure copy: cannot error, touches no heap edge, and
        # its value reaches no obligation.  Drop it.
        return None, live
    result = live - {lhs.name}
    if rhs is not None:
        result = result | {rhs.var}
    return statement, result


def _guard_cannot_fail(guard: object) -> bool:
    """True when evaluating the guard can never raise a pointer error:
    every atom compares step-free paths.  A variant test always
    dereferences its cell, so it can always fail."""
    if isinstance(guard, TPtrCompare):
        return not ((guard.left is not None and guard.left.steps)
                    or (guard.right is not None and guard.right.steps))
    if isinstance(guard, (TAnd, TOr)):
        return _guard_cannot_fail(guard.left) and \
            _guard_cannot_fail(guard.right)
    if isinstance(guard, TNot):
        return _guard_cannot_fail(guard.inner)
    return False
