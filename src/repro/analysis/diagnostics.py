"""Diagnostics reported by the static analyses.

A :class:`Diagnostic` is one finding of a lint: a stable code (the
lint's name), a severity, a human-readable message and a source
position.  The CLI renders them ``file:line:col: severity: [code]
message`` and exits nonzero when any error-severity diagnostic was
produced.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict


class Severity(enum.Enum):
    """How serious a diagnostic is.

    Errors are definite problems (a dereference that always fails, an
    assertion that cannot be checked); warnings are likely mistakes
    (dead stores, unreachable code, reads of never-assigned pointers).
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static analysis."""

    code: str
    severity: Severity
    message: str
    line: int
    column: int = 0

    def __str__(self) -> str:
        return (f"{self.line}:{self.column}: {self.severity.value}: "
                f"[{self.code}] {self.message}")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "line": self.line,
            "column": self.column,
        }
