"""Pointer lints over the typed IR.

Six analyses, each reporting :class:`Diagnostic` findings with source
positions:

* ``nil-deref`` (error) — a dereference whose base variable is
  *definitely* nil, by a forward nil-ness analysis with guard-edge
  refinement (``if p = nil then`` sharpens ``p`` along both edges,
  respecting short-circuit evaluation of ``and``/``or``);
* ``bad-assertion`` (error) — an annotation that does not parse or
  mentions unknown variables/fields/variants;
* ``use-before-assign`` (warning) — a pointer variable read before
  any assignment, unless an annotation mentions it (annotated
  variables are the program's declared inputs);
* ``dead-assignment`` (warning) — a variable assignment whose value
  is never used, by backward liveness (annotations count as uses of
  their free variables; a missing postcondition or invariant keeps
  every variable live, the verifier's well-formedness default);
* ``unreachable`` (warning) — a statement the nil-ness analysis
  proves no execution reaches (only the first statement of each dead
  region is reported);
* ``lost-cell`` (error) — a statement after which *no* variable can
  still point to a cell the program allocated, before its address was
  ever stored into the heap or the cell disposed: the cell is
  unreachable garbage from then on.  A forward analysis tracks, per
  allocation site, the set of variables that may hold the address and
  whether it may have escaped into a heap field; the report fires
  exactly when the may-set empties unescaped, so it is a definite
  leak, not a heuristic.

All lints are whole-program (loops included) and produce no findings
on the bundled example programs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from repro.analysis import cfg as cfg_mod
from repro.analysis.cfg import ANNOTATION, BRANCH, CFG, Edge, Node
from repro.analysis.coi import guard_vars
from repro.analysis.dataflow import (Analysis, BACKWARD, DataflowResult,
                                     FORWARD, solve)
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.errors import ReproError
from repro.pascal import check_program, parse_program
from repro.pascal.ast import Annotation
from repro.pascal.typed import (FieldLhs, TAnd, TAssertStmt, TAssign,
                                TDispose, TGuard, TIf, TNew, TNot, TOr,
                                TPath, TPtrCompare, TVariantTest, TWhile,
                                TypedProgram, VarLhs)
from repro.storelogic import ast as sl
from repro.storelogic.check import check_formula, free_program_vars
from repro.storelogic.parser import parse_formula

# Nil-ness lattice values (absent variables are TOP).
NIL = "nil"
NONNIL = "nonnil"
TOP = "top"

NilState = Dict[str, str]


def lint_source(text: str) -> List[Diagnostic]:
    """Lint a program source; front-end failures become diagnostics."""
    try:
        program = check_program(parse_program(text))
    except ReproError as exc:
        return [Diagnostic(
            code="front-end", severity=Severity.ERROR, message=str(exc),
            line=getattr(exc, "line", 0),
            column=getattr(exc, "column", 0))]
    return lint_program(program)


def lint_program(program: TypedProgram) -> List[Diagnostic]:
    """Run every lint over a typed program."""
    diagnostics: List[Diagnostic] = []
    diagnostics += _check_annotations(program)
    graph = cfg_mod.from_program(program)
    nil_result = solve(graph, _NilAnalysis(program))
    diagnostics += _nil_derefs(graph, nil_result)
    diagnostics += _unreachable(graph, nil_result)
    diagnostics += _use_before_assign(graph, program)
    diagnostics += _dead_assignments(graph, program)
    diagnostics += _lost_cells(graph)
    diagnostics.sort(key=lambda d: (d.line, d.column, d.code, d.message))
    return diagnostics


# ----------------------------------------------------------------------
# Annotations
# ----------------------------------------------------------------------

def _annotations(program: TypedProgram) -> List[Annotation]:
    """Every annotation of the program, in source order."""
    found: List[Annotation] = []
    if program.pre is not None:
        found.append(program.pre)

    def walk(statements: Sequence[object]) -> None:
        for statement in statements:
            if isinstance(statement, TAssertStmt):
                found.append(statement.annotation)
            elif isinstance(statement, TWhile):
                if statement.invariant is not None:
                    found.append(statement.invariant)
                walk(statement.body)
            elif isinstance(statement, TIf):
                walk(statement.then_body)
                walk(statement.else_body)

    walk(program.body)
    if program.post is not None:
        found.append(program.post)
    return found


def _check_annotations(program: TypedProgram) -> List[Diagnostic]:
    """``bad-assertion``: annotations must parse and name-check."""
    diagnostics = []
    for annotation in _annotations(program):
        try:
            check_formula(parse_formula(annotation.text),
                          program.schema)
        except ReproError as exc:
            diagnostics.append(Diagnostic(
                code="bad-assertion", severity=Severity.ERROR,
                message=f"invalid assertion {{{annotation.text}}}: "
                        f"{exc}",
                line=annotation.line, column=annotation.column))
    return diagnostics


def _annotation_vars(annotation: Annotation,
                     program: TypedProgram
                     ) -> Optional[FrozenSet[str]]:
    """The program variables an annotation mentions, or None when it
    does not parse (bad-assertion reports that separately)."""
    try:
        formula = parse_formula(annotation.text)
    except ReproError:
        return None
    return free_program_vars(formula) \
        & frozenset(program.schema.all_vars())


# ----------------------------------------------------------------------
# Nil-ness analysis (powers nil-deref and unreachable)
# ----------------------------------------------------------------------

class _NilAnalysis(Analysis[NilState]):
    """Forward must-analysis of each variable's nil-ness."""

    direction = FORWARD

    def __init__(self, program: TypedProgram) -> None:
        self.program = program

    def boundary(self, graph: CFG) -> NilState:
        state: NilState = {}
        if self.program.pre is not None:
            try:
                formula = parse_formula(self.program.pre.text)
            except ReproError:
                return state
            for conjunct in _conjuncts(formula):
                fact = _nil_fact(conjunct)
                if fact is not None:
                    state[fact[0]] = fact[1]
        return state

    def join(self, states: Sequence[NilState]) -> NilState:
        merged: NilState = {}
        first = states[0]
        for name, value in first.items():
            if value != TOP and all(other.get(name, TOP) == value
                                    for other in states[1:]):
                merged[name] = value
        return merged

    def transfer(self, node: Node, state: NilState) -> NilState:
        statement = node.statement
        if isinstance(statement, TAssign):
            state = _after_derefs(_statement_derefs(statement), state)
            if isinstance(statement.lhs, VarLhs):
                state = dict(state)
                if statement.rhs is None:
                    state[statement.lhs.name] = NIL
                elif statement.rhs.steps:
                    state.pop(statement.lhs.name, None)
                else:
                    value = state.get(statement.rhs.var, TOP)
                    state[statement.lhs.name] = value
            return state
        if isinstance(statement, TNew):
            state = _after_derefs(_statement_derefs(statement), state)
            if isinstance(statement.lhs, VarLhs):
                state = dict(state)
                state[statement.lhs.name] = NONNIL
            return state
        if isinstance(statement, TDispose):
            return _after_derefs(_statement_derefs(statement), state)
        # Branch, annotation, entry, exit: no state change (guard
        # knowledge lives on the edges).
        return state

    def refine(self, edge: Edge, state: NilState
               ) -> Optional[NilState]:
        if edge.guard is None:
            return state
        return _refine_guard(edge.guard, edge.value, state)


def _conjuncts(formula: object) -> List[object]:
    if isinstance(formula, sl.SAnd):
        return _conjuncts(formula.left) + _conjuncts(formula.right)
    return [formula]


def _nil_fact(conjunct: object) -> Optional[tuple]:
    """``v = nil`` / ``v <> nil`` facts from a precondition conjunct."""
    negated = False
    if isinstance(conjunct, sl.SNot):
        negated = True
        conjunct = conjunct.inner
    if not isinstance(conjunct, sl.SEq):
        return None
    terms = (conjunct.left, conjunct.right)
    names = [t.name for t in terms if isinstance(t, sl.TermVar)]
    nils = [t for t in terms if isinstance(t, sl.TermNil)]
    if len(names) == 1 and len(nils) == 1:
        return (names[0], NONNIL if negated else NIL)
    return None


def _after_derefs(bases: Sequence[str], state: NilState) -> NilState:
    """After a statement dereferences these variables, they are known
    non-nil (execution continued past the dereference)."""
    if not bases:
        return state
    state = dict(state)
    for name in bases:
        state[name] = NONNIL
    return state


def _value_deref(path: Optional[TPath]) -> List[str]:
    """The variable a value-position path dereferences, if any."""
    if path is not None and path.steps:
        return [path.var]
    return []


def _cell_deref(path: TPath) -> List[str]:
    """A cell-position path (field write, variant test, dispose)
    always dereferences its variable."""
    return [path.var]


def _statement_derefs(statement: object) -> List[str]:
    """Variables a (non-branch) statement dereferences."""
    if isinstance(statement, TAssign):
        bases = _value_deref(statement.rhs)
        if isinstance(statement.lhs, FieldLhs):
            bases += _cell_deref(statement.lhs.cell)
        return bases
    if isinstance(statement, TNew):
        if isinstance(statement.lhs, FieldLhs):
            return _cell_deref(statement.lhs.cell)
        return []
    if isinstance(statement, TDispose):
        return _cell_deref(statement.path)
    return []


def _refine_guard(guard: TGuard, value: bool,
                  state: NilState) -> Optional[NilState]:
    """The state after a guard evaluated to ``value`` (None when that
    outcome is impossible)."""
    if isinstance(guard, TNot):
        return _refine_guard(guard.inner, not value, state)
    if isinstance(guard, TAnd):
        if value:
            left = _refine_guard(guard.left, True, state)
            if left is None:
                return None
            return _refine_guard(guard.right, True, left)
        return _join_optional(
            _refine_guard(guard.left, False, state),
            _chain_refine(guard, state, first=False))
    if isinstance(guard, TOr):
        if not value:
            left = _refine_guard(guard.left, False, state)
            if left is None:
                return None
            return _refine_guard(guard.right, False, left)
        return _join_optional(
            _refine_guard(guard.left, True, state),
            _chain_refine(guard, state, first=True))
    if isinstance(guard, TVariantTest):
        # The test evaluated, so the cell path's base is non-nil.
        return _apply_fact(state, _cell_deref(guard.cell), None)
    if isinstance(guard, TPtrCompare):
        bases = _value_deref(guard.left) + _value_deref(guard.right)
        equal = (value != guard.negated)
        fact = None
        paths = (guard.left, guard.right)
        plain = [p for p in paths if p is not None and not p.steps]
        if None in paths and len(plain) == 1:
            fact = (plain[0].var, NIL if equal else NONNIL)
        return _apply_fact(state, bases, fact)
    raise TypeError(f"unknown guard node {guard!r}")


def _chain_refine(guard, state: NilState,
                  first: bool) -> Optional[NilState]:
    """The short-circuit case where the left operand passed and the
    right one decided: ``left`` true and ``right`` false for ``and``
    (``first=False``), ``left`` false and ``right`` true for ``or``."""
    left = _refine_guard(guard.left, not first, state)
    if left is None:
        return None
    return _refine_guard(guard.right, first, left)


def _join_optional(a: Optional[NilState],
                   b: Optional[NilState]) -> Optional[NilState]:
    if a is None:
        return b
    if b is None:
        return a
    merged: NilState = {}
    for name, value in a.items():
        if value != TOP and b.get(name, TOP) == value:
            merged[name] = value
    return merged


def _apply_fact(state: NilState, nonnil_bases: Sequence[str],
                fact: Optional[tuple]) -> Optional[NilState]:
    state = dict(state)
    for name in nonnil_bases:
        if state.get(name) == NIL:
            return None  # the dereference cannot have succeeded
        state[name] = NONNIL
    if fact is not None:
        name, value = fact
        known = state.get(name, TOP)
        if known != TOP and known != value:
            return None
        state[name] = value
    return state


# ----------------------------------------------------------------------
# nil-deref
# ----------------------------------------------------------------------

def _nil_derefs(graph: CFG,
                result: DataflowResult[NilState]) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []

    def flag(name: str, node: Node) -> None:
        diagnostics.append(Diagnostic(
            code="nil-deref", severity=Severity.ERROR,
            message=f"dereference of '{name}', which is always nil "
                    f"here", line=node.line))

    for node in graph.statement_nodes():
        if not result.reachable(node.index):
            continue
        state = result.inputs[node.index]
        if node.kind == BRANCH:
            guard = node.statement.cond  # type: ignore[union-attr]
            for name in _guard_nil_derefs(guard, state):
                flag(name, node)
        else:
            for name in _statement_derefs(node.statement):
                if state.get(name) == NIL:
                    flag(name, node)
    return diagnostics


def _guard_nil_derefs(guard: TGuard, state: NilState) -> List[str]:
    """Definitely-nil dereferences a guard performs, respecting
    short-circuit evaluation order."""
    if isinstance(guard, TNot):
        return _guard_nil_derefs(guard.inner, state)
    if isinstance(guard, (TAnd, TOr)):
        found = _guard_nil_derefs(guard.left, state)
        # The right operand only evaluates when the left let it.
        passed = _refine_guard(guard.left, isinstance(guard, TAnd),
                               state)
        if passed is not None:
            found += _guard_nil_derefs(guard.right, passed)
        return found
    if isinstance(guard, TVariantTest):
        bases = _cell_deref(guard.cell)
    else:
        assert isinstance(guard, TPtrCompare)
        bases = _value_deref(guard.left) + _value_deref(guard.right)
    return [name for name in bases if state.get(name) == NIL]


# ----------------------------------------------------------------------
# unreachable
# ----------------------------------------------------------------------

def _unreachable(graph: CFG,
                 result: DataflowResult[NilState]) -> List[Diagnostic]:
    diagnostics = []
    for node in graph.statement_nodes():
        if result.reachable(node.index):
            continue
        # Report only the head of each dead region: a node with some
        # reachable predecessor.
        if any(result.reachable(edge.src)
               for edge in graph.predecessors(node.index)):
            diagnostics.append(Diagnostic(
                code="unreachable", severity=Severity.WARNING,
                message="statement is unreachable", line=node.line))
    return diagnostics


# ----------------------------------------------------------------------
# use-before-assign
# ----------------------------------------------------------------------

class _UnassignedAnalysis(Analysis[FrozenSet[str]]):
    """Forward may-analysis: pointer variables possibly never yet
    assigned.  Annotated variables are exempt (they are inputs)."""

    direction = FORWARD

    def __init__(self, program: TypedProgram) -> None:
        annotated: Set[str] = set()
        for annotation in _annotations(program):
            # None means the annotation does not parse (bad-assertion
            # reports that); an empty set is a real answer — {true}
            # exempts nothing.
            found = _annotation_vars(annotation, program)
            annotated |= frozenset(program.schema.all_vars()) \
                if found is None else found
        self.initial = frozenset(
            name for name in program.schema.pointer_vars
            if name not in annotated)

    def boundary(self, graph: CFG) -> FrozenSet[str]:
        return self.initial

    def join(self, states: Sequence[FrozenSet[str]]) -> FrozenSet[str]:
        return frozenset().union(*states)

    def transfer(self, node: Node,
                 state: FrozenSet[str]) -> FrozenSet[str]:
        statement = node.statement
        if isinstance(statement, (TAssign, TNew)) and \
                isinstance(statement.lhs, VarLhs):
            return state - {statement.lhs.name}
        return state


def _statement_reads(statement: object) -> List[str]:
    """Variables whose values a statement (or its guard) reads."""
    if isinstance(statement, TAssign):
        reads = [statement.rhs.var] if statement.rhs is not None else []
        if isinstance(statement.lhs, FieldLhs):
            reads.append(statement.lhs.cell.var)
        return reads
    if isinstance(statement, TNew):
        if isinstance(statement.lhs, FieldLhs):
            return [statement.lhs.cell.var]
        return []
    if isinstance(statement, TDispose):
        return [statement.path.var]
    if isinstance(statement, (TIf, TWhile)):
        return sorted(guard_vars(statement.cond))
    return []


def _use_before_assign(graph: CFG,
                       program: TypedProgram) -> List[Diagnostic]:
    result = solve(graph, _UnassignedAnalysis(program))
    diagnostics = []
    reported: Set[str] = set()
    for node in graph.statement_nodes():
        if node.kind == ANNOTATION or \
                not result.reachable(node.index):
            continue
        state = result.inputs[node.index]
        for name in _statement_reads(node.statement):
            if name in state and name not in reported:
                reported.add(name)
                diagnostics.append(Diagnostic(
                    code="use-before-assign",
                    severity=Severity.WARNING,
                    message=f"pointer '{name}' may be read before "
                            f"any assignment", line=node.line))
    return diagnostics


# ----------------------------------------------------------------------
# lost-cell
# ----------------------------------------------------------------------

#: Per allocation site (the ``new``'s line): the variables that may
#: still hold the cell's address, and whether the address may have
#: been stored into a heap field ("escaped").
AllocState = Dict[int, "AllocFact"]
AllocFact = tuple  # (FrozenSet[str] aliases, bool escaped)


class _AllocAnalysis(Analysis[AllocState]):
    """Forward may-analysis of where each allocated cell's address can
    still be.  ``new(v, c)`` starts a site with may-set ``{v}``;
    copies propagate membership, overwrites remove it, a heap store of
    a member marks the site escaped, and ``dispose`` of a member
    retires the site.  A site whose may-set empties unescaped is a
    definite leak — the transfer drops it (the reporting pass replays
    the transition to attach a position)."""

    direction = FORWARD

    def boundary(self, graph: CFG) -> AllocState:
        return {}

    def join(self, states: Sequence[AllocState]) -> AllocState:
        merged: AllocState = {}
        for state in states:
            for site, (aliases, escaped) in state.items():
                old = merged.get(site)
                if old is None:
                    merged[site] = (aliases, escaped)
                else:
                    merged[site] = (old[0] | aliases,
                                    old[1] or escaped)
        return merged

    def transfer(self, node: Node, state: AllocState) -> AllocState:
        return _alloc_transfer(node.statement, state)[0]


def _drop_empty(state: AllocState) -> tuple:
    """Split a state into (live sites, leaked site lines)."""
    kept: AllocState = {}
    lost: List[int] = []
    for site, (aliases, escaped) in state.items():
        if aliases or escaped:
            kept[site] = (aliases, escaped)
        else:
            lost.append(site)
    return kept, lost


def _alloc_transfer(statement: object, state: AllocState) -> tuple:
    """One forward step: (state after, lines of sites leaked here)."""
    if isinstance(statement, TAssign):
        lhs, rhs = statement.lhs, statement.rhs
        if isinstance(lhs, FieldLhs):
            # Storing a member's value into the heap publishes the
            # cell's address; the heap may now be its only route.
            if rhs is not None and not rhs.steps:
                state = {site: (aliases, escaped or rhs.var in aliases)
                         for site, (aliases, escaped) in state.items()}
            return state, []
        updated: AllocState = {}
        for site, (aliases, escaped) in state.items():
            if rhs is not None and not rhs.steps and \
                    rhs.var in aliases:
                aliases = aliases | {lhs.name}
            else:
                # nil, a non-member variable, or a heap read (which
                # can only yield the address once it escaped — and
                # escaped sites are never reported).
                aliases = aliases - {lhs.name}
            updated[site] = (aliases, escaped)
        return _drop_empty(updated)
    if isinstance(statement, TNew):
        if isinstance(statement.lhs, FieldLhs):
            # Allocated directly into a heap field: reachable from the
            # heap by construction; nothing to track.
            return state, []
        name = statement.lhs.name
        updated = {site: (aliases - {name}, escaped)
                   for site, (aliases, escaped) in state.items()}
        kept, lost = _drop_empty(updated)
        kept[statement.line] = (frozenset([name]), False)
        return kept, lost
    if isinstance(statement, TDispose):
        path = statement.path
        if path.steps:
            # Freeing through the heap: only an escaped cell can be
            # reached this way, and escaped sites are already exempt.
            return state, []
        return {site: fact for site, fact in state.items()
                if path.var not in fact[0]}, []
    # Branches, annotations, entry/exit: no change.
    return state, []


def _lost_cells(graph: CFG) -> List[Diagnostic]:
    result = solve(graph, _AllocAnalysis())
    diagnostics = []
    for node in graph.statement_nodes():
        if node.kind in (BRANCH, ANNOTATION) or \
                not result.reachable(node.index):
            continue
        _, lost = _alloc_transfer(node.statement,
                                  result.inputs[node.index])
        for site in sorted(lost):
            diagnostics.append(Diagnostic(
                code="lost-cell", severity=Severity.ERROR,
                message=f"cell allocated at line {site} is lost here: "
                        f"no variable still points to it and its "
                        f"address was never stored",
                line=node.line))
    return diagnostics


# ----------------------------------------------------------------------
# dead-assignment
# ----------------------------------------------------------------------

class _LivenessAnalysis(Analysis[FrozenSet[str]]):
    """Backward liveness; annotations use their free variables, and a
    missing postcondition or invariant keeps everything live."""

    direction = BACKWARD

    def __init__(self, program: TypedProgram) -> None:
        self.program = program
        self.everything = frozenset(program.schema.all_vars())

    def _annotation_live(self,
                         annotation: Optional[Annotation]
                         ) -> FrozenSet[str]:
        if annotation is None:
            return self.everything
        found = _annotation_vars(annotation, self.program)
        return self.everything if found is None else found

    def boundary(self, graph: CFG) -> FrozenSet[str]:
        return self._annotation_live(self.program.post)

    def join(self, states: Sequence[FrozenSet[str]]) -> FrozenSet[str]:
        return frozenset().union(*states)

    def transfer(self, node: Node,
                 state: FrozenSet[str]) -> FrozenSet[str]:
        statement = node.statement
        if node.kind == ANNOTATION:
            if isinstance(statement, TWhile):
                return state | self._annotation_live(
                    statement.invariant)
            if isinstance(statement, TAssertStmt):
                return state | self._annotation_live(
                    statement.annotation)
            return state
        if isinstance(statement, (TAssign, TNew)) and \
                isinstance(statement.lhs, VarLhs):
            state = state - {statement.lhs.name}
        return state | frozenset(_statement_reads(statement))


def _dead_assignments(graph: CFG,
                      program: TypedProgram) -> List[Diagnostic]:
    result = solve(graph, _LivenessAnalysis(program))
    diagnostics = []
    for node in graph.statement_nodes():
        statement = node.statement
        if not isinstance(statement, TAssign) or \
                not isinstance(statement.lhs, VarLhs) or \
                not result.reachable(node.index):
            continue
        live_after = result.inputs[node.index]
        if statement.lhs.name not in live_after:
            diagnostics.append(Diagnostic(
                code="dead-assignment", severity=Severity.WARNING,
                message=f"value assigned to "
                        f"'{statement.lhs.name}' is never used",
                line=node.line))
    return diagnostics
