"""A small monotone dataflow framework over :mod:`repro.analysis.cfg`.

An :class:`Analysis` supplies a direction, a boundary state, a join,
a per-node transfer function, and (optionally) an edge refinement that
sharpens the state along a guard edge — returning None marks the edge
infeasible, which is how semantic unreachability is discovered.

:func:`solve` runs the standard worklist iteration to the least fixed
point.  States must be immutable values with structural equality
(frozensets, tuples, dicts compared by ``==``); termination is the
analysis author's obligation (finite lattice, monotone transfer).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Generic, List, Optional, Sequence, TypeVar

from repro.analysis.cfg import CFG, Edge, Node

State = TypeVar("State")

FORWARD = "forward"
BACKWARD = "backward"


class Analysis(Generic[State]):
    """One dataflow problem; subclass and override."""

    #: FORWARD analyses propagate entry -> exit, BACKWARD the reverse.
    direction = FORWARD

    def boundary(self, cfg: CFG) -> State:
        """The state at the start node (entry or exit by direction)."""
        raise NotImplementedError

    def join(self, states: Sequence[State]) -> State:
        """Combine the states meeting at a node."""
        raise NotImplementedError

    def transfer(self, node: Node, state: State) -> State:
        """The state after ``node``, in the analysis direction."""
        raise NotImplementedError

    def refine(self, edge: Edge, state: State) -> Optional[State]:
        """Sharpen ``state`` along ``edge``; None means infeasible.

        Called with the source node's output state (in the analysis
        direction); the default keeps it unchanged.
        """
        return state


@dataclass
class DataflowResult(Generic[State]):
    """Fixed-point states, keyed by node index.

    ``inputs[n]``/``outputs[n]`` are the states at node ``n``'s input
    and output *in the analysis direction* — for a backward analysis,
    the input is the state after the node in execution order.  A node
    absent from ``inputs`` was never reached (semantically dead code
    for a forward analysis).
    """

    inputs: Dict[int, State]
    outputs: Dict[int, State]

    def reachable(self, index: int) -> bool:
        return index in self.inputs


def solve(cfg: CFG, analysis: Analysis[State]) -> DataflowResult[State]:
    """Worklist iteration to the least fixed point."""
    forward = analysis.direction == FORWARD
    start = cfg.entry if forward else cfg.exit
    inputs: Dict[int, State] = {start: analysis.boundary(cfg)}
    outputs: Dict[int, State] = {}
    worklist = deque([start])
    queued = {start}
    while worklist:
        index = worklist.popleft()
        queued.discard(index)
        state = analysis.transfer(cfg.nodes[index], inputs[index])
        if index in outputs and outputs[index] == state:
            continue
        outputs[index] = state
        edges = cfg.successors(index) if forward \
            else cfg.predecessors(index)
        for edge in edges:
            target = edge.dst if forward else edge.src
            refined = analysis.refine(edge, state)
            if refined is None:
                continue
            if target not in inputs:
                inputs[target] = refined
            else:
                joined = analysis.join([inputs[target], refined])
                if joined == inputs[target]:
                    continue
                inputs[target] = joined
            if target not in queued:
                worklist.append(target)
                queued.add(target)
    return DataflowResult(inputs, outputs)
