"""Control-flow graphs over the typed Pascal IR.

One :class:`Node` per statement, plus a synthetic entry and exit.
Conditionals and loops become ``branch`` nodes whose outgoing edges
carry the guard and the direction taken, so analyses can refine their
states along each branch (for example, learning ``p = nil`` on the
true edge of ``if p = nil then ...``).  Loop invariants and cut-point
assertions appear as ``annotation`` nodes — in the verifier they are
both assumed and checked at their program point, so dataflow analyses
treat them as uses of their free variables.

The language has no goto or early return, so every node is
structurally reachable; unreachability only arises semantically, when
an analysis proves a guard edge infeasible (:mod:`repro.analysis
.dataflow`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.pascal.typed import (TAssertStmt, TAssign, TDispose, TGuard,
                                TIf, TNew, TWhile, TypedProgram)

#: Node kinds.
ENTRY = "entry"
EXIT = "exit"
STMT = "stmt"
BRANCH = "branch"
ANNOTATION = "annotation"


@dataclass
class Node:
    """One control-flow node."""

    index: int
    kind: str
    #: The typed statement (None for entry/exit).  ``branch`` nodes
    #: hold their TIf/TWhile, ``annotation`` nodes their TAssertStmt
    #: or the TWhile whose invariant they model.
    statement: Optional[object]
    line: int = 0


@dataclass(frozen=True)
class Edge:
    """A control-flow edge, optionally labelled with a guard outcome."""

    src: int
    dst: int
    #: The branch guard this edge evaluates, or None (fall-through).
    guard: Optional[TGuard] = None
    #: The guard's outcome along this edge.
    value: bool = True


@dataclass
class CFG:
    """A control-flow graph; node 0 is the entry, node 1 the exit."""

    nodes: List[Node] = field(default_factory=list)
    edges: List[Edge] = field(default_factory=list)

    @property
    def entry(self) -> int:
        return 0

    @property
    def exit(self) -> int:
        return 1

    def successors(self, index: int) -> List[Edge]:
        return self._out.get(index, [])

    def predecessors(self, index: int) -> List[Edge]:
        return self._in.get(index, [])

    def finish(self) -> "CFG":
        """Index the edge lists (call once, after construction)."""
        self._out: Dict[int, List[Edge]] = {}
        self._in: Dict[int, List[Edge]] = {}
        for edge in self.edges:
            self._out.setdefault(edge.src, []).append(edge)
            self._in.setdefault(edge.dst, []).append(edge)
        return self

    def statement_nodes(self) -> List[Node]:
        """All nodes carrying a statement, in creation (source) order."""
        return [node for node in self.nodes
                if node.statement is not None]


#: A pending edge source: (node index, guard, guard value).
_Dangling = Tuple[int, Optional[TGuard], bool]


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self._node(ENTRY, None)
        self._node(EXIT, None)

    def _node(self, kind: str, statement: Optional[object],
              line: int = 0) -> int:
        index = len(self.cfg.nodes)
        self.cfg.nodes.append(Node(index, kind, statement, line))
        return index

    def _wire(self, frontier: Sequence[_Dangling], dst: int) -> None:
        for src, guard, value in frontier:
            self.cfg.edges.append(Edge(src, dst, guard, value))

    def build(self, statements: Sequence[object]) -> CFG:
        frontier = self._sequence([(self.cfg.entry, None, True)],
                                  statements)
        self._wire(frontier, self.cfg.exit)
        return self.cfg.finish()

    def _sequence(self, frontier: List[_Dangling],
                  statements: Sequence[object]) -> List[_Dangling]:
        for statement in statements:
            frontier = self._statement(frontier, statement)
        return frontier

    def _statement(self, frontier: List[_Dangling],
                   statement: object) -> List[_Dangling]:
        line = getattr(statement, "line", 0)
        if isinstance(statement, (TAssign, TNew, TDispose)):
            node = self._node(STMT, statement, line)
            self._wire(frontier, node)
            return [(node, None, True)]
        if isinstance(statement, TAssertStmt):
            node = self._node(ANNOTATION, statement, line)
            self._wire(frontier, node)
            return [(node, None, True)]
        if isinstance(statement, TIf):
            node = self._node(BRANCH, statement, line)
            self._wire(frontier, node)
            after = self._sequence([(node, statement.cond, True)],
                                   statement.then_body)
            after += self._sequence([(node, statement.cond, False)],
                                    statement.else_body)
            return after
        if isinstance(statement, TWhile):
            # The loop head is an annotation node (the invariant is
            # assumed and checked there) followed by the guard branch;
            # the body loops back to the head.
            head = self._node(ANNOTATION, statement, line)
            self._wire(frontier, head)
            node = self._node(BRANCH, statement, line)
            self._wire([(head, None, True)], node)
            back = self._sequence([(node, statement.cond, True)],
                                  statement.body)
            self._wire(back, head)
            return [(node, statement.cond, False)]
        raise TypeError(f"unknown statement node {statement!r}")


def from_statements(statements: Sequence[object]) -> CFG:
    """Build the CFG of a statement sequence."""
    return _Builder().build(statements)


def from_program(program: TypedProgram) -> CFG:
    """Build the CFG of a typed program's body."""
    return from_statements(program.body)
