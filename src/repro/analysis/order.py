"""Dependency-driven BDD track ordering.

Each kept program variable becomes one second-order track, and the
compiler allocates BDD levels in the order the layout registers them
(:meth:`repro.symbolic.layout.TrackLayout.register`).  Until now that
order was the schema's declaration order — an arbitrary choice the
BDD literature warns about: variables that interact (appear in the
same assignment, comparison, or obligation) should sit on *adjacent*
levels, or every node between them duplicates for each valuation of
the unrelated tracks in between.

This pass builds a **variable-affinity graph** from the same facts the
dataflow passes read — assignments link source and target, heap
writes link the cell and the stored value, guard atoms link their
operands, and every obligation links all its free variables pairwise —
and orders the tracks by a deterministic greedy chain: start from the
highest-affinity variable, then repeatedly append the unplaced
variable with the strongest affinity to those already placed.  Ties
fall back to declaration order, so the pass is a no-op exactly when
the affinity graph says nothing.

Verdicts cannot depend on the order (it renames BDD levels, nothing
else); only automaton sizes and timings move.  ``--no-order`` restores
the declaration order.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.analysis.coi import guard_vars
from repro.pascal.typed import (FieldLhs, TAnd, TAssign, TDispose, TIf,
                                TNew, TNot, TOr, TPtrCompare,
                                TVariantTest, VarLhs)
from repro.stores.schema import Schema

#: Edge weights: statements couple variables through the transduction
#: on every obligation, guard atoms only through the error/guard
#: formulas, obligations through their own formula.
_W_STATEMENT = 3
_W_GUARD = 1
_W_OBLIGATION = 2

Affinity = Dict[Tuple[str, str], int]


def affinity_graph(statements: Sequence[object],
                   obligation_vars: Iterable[FrozenSet[str]]) -> Affinity:
    """Pairwise affinity weights between program variables."""
    weights: Affinity = {}
    _walk_statements(statements, weights)
    for var_set in obligation_vars:
        _link_clique(sorted(var_set), _W_OBLIGATION, weights)
    return weights


def choose_order(statements: Sequence[object],
                 obligation_vars: Iterable[FrozenSet[str]],
                 schema: Schema,
                 keep: Iterable[str]) -> Tuple[str, ...]:
    """The track order for the kept variables.

    Deterministic greedy chaining over the affinity graph; declaration
    order breaks every tie and is returned unchanged when the graph
    has no edges between kept variables.
    """
    declared = [name for name in schema.all_vars() if name in set(keep)]
    weights = affinity_graph(statements, obligation_vars)
    kept = set(declared)
    edges: Affinity = {pair: weight for pair, weight in weights.items()
                       if pair[0] in kept and pair[1] in kept}
    if not edges:
        return tuple(declared)
    totals = {name: 0 for name in declared}
    for (left, right), weight in edges.items():
        totals[left] += weight
        totals[right] += weight
    # Highest total affinity first; declaration order breaks ties.
    rank = {name: index for index, name in enumerate(declared)}
    start = min(declared, key=lambda name: (-totals[name], rank[name]))
    placed: List[str] = [start]
    remaining = [name for name in declared if name != start]
    while remaining:
        def pull(name: str) -> int:
            return sum(edges.get(_pair(name, other), 0)
                       for other in placed)
        best = min(remaining, key=lambda name: (-pull(name), rank[name]))
        placed.append(best)
        remaining.remove(best)
    return tuple(placed)


def _pair(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


def _bump(a: str, b: str, weight: int, weights: Affinity) -> None:
    if a == b:
        return
    key = _pair(a, b)
    weights[key] = weights.get(key, 0) + weight


def _link_clique(names: Sequence[str], weight: int,
                 weights: Affinity) -> None:
    for i, left in enumerate(names):
        for right in names[i + 1:]:
            _bump(left, right, weight, weights)


def _walk_statements(statements: Sequence[object],
                     weights: Affinity) -> None:
    for statement in statements:
        if isinstance(statement, TAssign):
            lhs, rhs = statement.lhs, statement.rhs
            left = lhs.cell.var if isinstance(lhs, FieldLhs) else lhs.name
            if rhs is not None:
                _bump(left, rhs.var, _W_STATEMENT, weights)
        elif isinstance(statement, TNew):
            if isinstance(statement.lhs, FieldLhs):
                # No pair: allocation reads no other variable.
                pass
        elif isinstance(statement, TDispose):
            pass
        elif isinstance(statement, TIf):
            _walk_guard(statement.cond, weights)
            _walk_statements(statement.then_body, weights)
            _walk_statements(statement.else_body, weights)


def _walk_guard(guard: object, weights: Affinity) -> None:
    if isinstance(guard, TPtrCompare):
        names = sorted(guard_vars(guard))
        _link_clique(names, _W_GUARD, weights)
    elif isinstance(guard, TVariantTest):
        pass
    elif isinstance(guard, (TAnd, TOr)):
        _walk_guard(guard.left, weights)
        _walk_guard(guard.right, weights)
    elif isinstance(guard, TNot):
        _walk_guard(guard.inner, weights)
