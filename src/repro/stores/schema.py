"""Program schemas: the type-level information a store conforms to.

A :class:`Schema` is produced by the Pascal type checker and consumed
by every later stage: it fixes the record types with their variants,
the single outgoing pointer field a variant may carry (linear lists —
the restriction of the paper's implementation), and the classification
of program variables into *data* variables (owning disjoint lists) and
*pointer* variables (free-ranging references).

The declaration order of data variables matters: the string encoding
lays the lists out in that order (paper §3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import TypeError_


@dataclass(frozen=True)
class FieldInfo:
    """A pointer field of a record variant.

    Attributes:
        name: the field name (``next`` in all the paper's examples).
        target: the record type the field points to.
    """

    name: str
    target: str


@dataclass(frozen=True)
class RecordType:
    """A record type with a variant part.

    Attributes:
        name: the type name (e.g. ``Item``).
        tag_field: the name of the tag field (e.g. ``tag``).
        tag_type: the enumeration type of the tag.
        variants: maps each variant (enum constant) to its pointer
            field, or to None when the variant has no pointer field.
    """

    name: str
    tag_field: str
    tag_type: str
    variants: Dict[str, Optional[FieldInfo]]

    def field_of(self, variant: str) -> Optional[FieldInfo]:
        """The pointer field of ``variant`` (None when absent)."""
        if variant not in self.variants:
            raise TypeError_(
                f"record {self.name} has no variant {variant}")
        return self.variants[variant]


@dataclass
class Schema:
    """All type information of one program.

    Attributes:
        enums: enumeration types, name -> ordered constants.
        records: record types by name.
        data_vars: data variables, name -> record type pointed to,
            in declaration order.
        pointer_vars: pointer variables, name -> record type.
    """

    enums: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    records: Dict[str, RecordType] = field(default_factory=dict)
    data_vars: Dict[str, str] = field(default_factory=dict)
    pointer_vars: Dict[str, str] = field(default_factory=dict)
    #: pointer type aliases (``List = ^Item`` gives ``{"List": "Item"}``);
    #: assertions may name record types through these aliases.
    pointer_aliases: Dict[str, str] = field(default_factory=dict)

    def resolve_record(self, name: str) -> str:
        """Resolve a record type name or pointer alias to a record name."""
        if name in self.records:
            return name
        if name in self.pointer_aliases:
            return self.pointer_aliases[name]
        raise TypeError_(f"unknown record type or pointer alias {name}")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def record(self, name: str) -> RecordType:
        """The record type called ``name``."""
        try:
            return self.records[name]
        except KeyError:
            raise TypeError_(f"unknown record type {name}") from None

    def variant_labels(self) -> List[Tuple[str, str]]:
        """All (record type, variant) pairs, in declaration order.

        These are the record-cell labels of the store alphabet.
        """
        labels: List[Tuple[str, str]] = []
        for record in self.records.values():
            for variant in record.variants:
                labels.append((record.name, variant))
        return labels

    def var_type(self, name: str) -> str:
        """The record type a (data or pointer) variable points to."""
        if name in self.data_vars:
            return self.data_vars[name]
        if name in self.pointer_vars:
            return self.pointer_vars[name]
        raise TypeError_(f"unknown variable {name}")

    def is_data(self, name: str) -> bool:
        """True for data variables, False for pointer variables."""
        if name in self.data_vars:
            return True
        if name in self.pointer_vars:
            return False
        raise TypeError_(f"unknown variable {name}")

    def all_vars(self) -> List[str]:
        """Data variables (declaration order) then pointer variables."""
        return list(self.data_vars) + list(self.pointer_vars)

    def variant_exists(self, type_name: str, variant: str) -> bool:
        """True iff ``variant`` belongs to record type ``type_name``."""
        record = self.records.get(type_name)
        return record is not None and variant in record.variants

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check internal consistency; raise TypeError_ on problems."""
        for record in self.records.values():
            if record.tag_type not in self.enums:
                raise TypeError_(
                    f"record {record.name}: tag type {record.tag_type} "
                    f"is not an enumeration")
            constants = set(self.enums[record.tag_type])
            for variant, info in record.variants.items():
                if variant not in constants:
                    raise TypeError_(
                        f"record {record.name}: variant {variant} is not "
                        f"a constant of {record.tag_type}")
                if info is not None and info.target not in self.records:
                    raise TypeError_(
                        f"record {record.name}: field {info.name} points "
                        f"to unknown type {info.target}")
        overlap = set(self.data_vars) & set(self.pointer_vars)
        if overlap:
            raise TypeError_(
                f"variables declared both data and pointer: "
                f"{sorted(overlap)}")
        for name, target in {**self.data_vars, **self.pointer_vars}.items():
            if target not in self.records:
                raise TypeError_(
                    f"variable {name} points to unknown type {target}")
