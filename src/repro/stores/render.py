"""ASCII rendering of stores and symbol strings.

The paper envisions "a small cartoon of store modifications that
explains the faulty behavior" (§5); :func:`render_store` draws one
frame of that cartoon, and :func:`render_symbols` prints the encoded
string in the paper's ``[label,{vars}]`` notation.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.stores.encode import Symbol
from repro.stores.model import NIL_ID, CellKind, Store


def render_symbols(symbols: Sequence[Symbol]) -> str:
    """The paper's notation, e.g. ``[nil,{p}] [(List:red),{x}] [lim,{}]``."""
    return " ".join(str(symbol) for symbol in symbols)


def render_store(store: Store) -> str:
    """A multi-line ASCII picture of a store.

    Each data variable's list is drawn on its own line; pointer
    variables are shown under the cell they reference; garbage cells
    and dangling bindings are listed at the end.  Works on ill-formed
    stores too (chains are cut at the first problem), which is what
    the failure cartoons need.
    """
    lines: List[str] = []
    drawn: set = set()
    for name in store.schema.data_vars:
        lines.extend(_render_chain(store, name, drawn))
    remaining_records = [ident for ident in store.record_ids()
                         if ident not in drawn]
    if remaining_records:
        parts = [f"{_cell_text(store, ident)}#{ident}"
                 for ident in remaining_records]
        lines.append("unclaimed: " + "  ".join(parts))
    garbage = store.garbage_ids()
    if garbage:
        lines.append("garbage: " + "  ".join(f"#{g}" for g in garbage))
    dangling = [name for name, ident in sorted(store.vars.items())
                if ident != NIL_ID
                and store.cell(ident).kind is not CellKind.RECORD]
    if dangling:
        lines.append("dangling: " + ", ".join(
            f"{name}->#{store.vars[name]}" for name in dangling))
    return "\n".join(lines)


def _render_chain(store: Store, name: str, drawn: set) -> List[str]:
    ident = store.var(name)
    if ident == NIL_ID:
        return [f"{name}: nil"]
    cells: List[int] = []
    broken = ""
    seen = set()
    while ident != NIL_ID:
        cell = store._cells.get(ident)
        if cell is None or cell.kind is not CellKind.RECORD:
            broken = " ...broken"
            break
        if ident in seen:
            broken = " ...cycle"
            break
        seen.add(ident)
        cells.append(ident)
        if cell.next is None:
            broken = "" if not _has_field(store, cell) else " ...undef"
            break
        ident = cell.next
    drawn.update(cells)
    top_parts: List[str] = []
    offsets: Dict[int, int] = {}
    cursor = len(name) + 2
    for index, cell_id in enumerate(cells):
        text = _cell_text(store, cell_id)
        offsets[cell_id] = cursor
        top_parts.append(text)
        cursor += len(text) + 4  # " -> "
    top = f"{name}: " + " -> ".join(top_parts)
    if not broken:
        top += " -> nil" if cells else "nil"
    else:
        top += broken
    lines = [top]
    pointer_line = _pointer_annotations(store, offsets)
    if pointer_line:
        lines.append(pointer_line)
    return lines


def _has_field(store: Store, cell) -> bool:
    record = store.schema.records.get(cell.type_name or "")
    if record is None:
        return False
    return record.variants.get(cell.variant or "") is not None


def _cell_text(store: Store, ident: int) -> str:
    cell = store.cell(ident)
    return f"[{cell.variant}]"


def _pointer_annotations(store: Store, offsets: Dict[int, int]) -> str:
    marks: List[tuple] = []
    for name in store.schema.pointer_vars:
        ident = store.vars.get(name, NIL_ID)
        if ident in offsets:
            marks.append((offsets[ident], name))
    if not marks:
        return ""
    line = [" "] * (max(offset for offset, _ in marks) + 16)
    for offset, name in sorted(marks):
        text = f"^{name}"
        for index, char in enumerate(text):
            line[offset + index] = char
    return "".join(line).rstrip()
