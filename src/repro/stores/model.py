"""Concrete stores: cells, variables, and well-formedness.

The store model of paper §3: a distinguished *nil* cell, *record*
cells labelled with a record type and variant and carrying at most one
outgoing pointer, and *garbage* cells (deallocated records, no
pointers in or out).  Named handles are the program's *data* variables
(each owning a disjoint nil-terminated list) and *pointer* variables
(pointing anywhere into the lists, or to nil).

:class:`Store` is deliberately permissive: programs transit through
ill-formed stores (e.g. between ``dispose`` and the reassignment of
the dangling variable in the paper's ``delete``), so mutation methods
do not enforce well-formedness — :meth:`Store.violations` checks it on
demand, exactly as the verifier checks it at assertion points.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import StoreError
from repro.stores.schema import Schema

#: The cell id of the distinguished nil cell.
NIL_ID = 0


class CellKind(enum.Enum):
    """What a cell currently is."""

    NIL = "nil"
    RECORD = "record"
    GARBAGE = "garbage"


@dataclass
class Cell:
    """One memory cell.

    Attributes:
        ident: the cell id (0 is always the nil cell).
        kind: nil / record / garbage.
        type_name: record type, or None for nil and garbage cells.
        variant: current variant tag, or None likewise.
        next: target cell id of the pointer field; ``NIL_ID`` for nil,
            None when undefined (fresh cells, garbage cells, and
            variants without a pointer field).
    """

    ident: int
    kind: CellKind
    type_name: Optional[str] = None
    variant: Optional[str] = None
    next: Optional[int] = None


class Store:
    """A mutable concrete store over a :class:`Schema`.

    All program variables exist from construction and start at nil.
    """

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._cells: Dict[int, Cell] = {
            NIL_ID: Cell(NIL_ID, CellKind.NIL)}
        self._next_id = 1
        self.vars: Dict[str, int] = {
            name: NIL_ID for name in schema.all_vars()}

    # ------------------------------------------------------------------
    # Construction and copying
    # ------------------------------------------------------------------

    def clone(self) -> "Store":
        """An independent deep copy."""
        copy = Store(self.schema)
        copy._cells = {ident: Cell(cell.ident, cell.kind, cell.type_name,
                                   cell.variant, cell.next)
                       for ident, cell in self._cells.items()}
        copy._next_id = self._next_id
        copy.vars = dict(self.vars)
        return copy

    def add_record(self, type_name: str, variant: str,
                   next_id: Optional[int] = None) -> int:
        """Create a record cell; returns its id.

        ``next_id`` is the pointer-field target (None = undefined).
        """
        if not self.schema.variant_exists(type_name, variant):
            raise StoreError(
                f"no variant {variant} in record type {type_name}")
        ident = self._next_id
        self._next_id += 1
        self._cells[ident] = Cell(ident, CellKind.RECORD, type_name,
                                  variant, next_id)
        return ident

    def add_garbage(self) -> int:
        """Create a garbage cell (available memory); returns its id."""
        ident = self._next_id
        self._next_id += 1
        self._cells[ident] = Cell(ident, CellKind.GARBAGE)
        return ident

    def make_list(self, data_var: str, variants: List[str],
                  type_name: Optional[str] = None) -> List[int]:
        """Build a fresh list of the given variants and attach it to
        ``data_var``.  Returns the new cell ids, head first."""
        if type_name is None:
            type_name = self.schema.var_type(data_var)
        ids = [self.add_record(type_name, variant) for variant in variants]
        for here, there in zip(ids, ids[1:]):
            self._cells[here].next = there
        if ids:
            self._cells[ids[-1]].next = NIL_ID
            self.vars[data_var] = ids[0]
        else:
            self.vars[data_var] = NIL_ID
        return ids

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def cell(self, ident: int) -> Cell:
        """The cell with the given id."""
        try:
            return self._cells[ident]
        except KeyError:
            raise StoreError(f"no cell with id {ident}") from None

    def cells(self) -> Iterator[Cell]:
        """All cells in ascending id order (nil first)."""
        for ident in sorted(self._cells):
            yield self._cells[ident]

    def var(self, name: str) -> int:
        """The cell id a variable currently references."""
        try:
            return self.vars[name]
        except KeyError:
            raise StoreError(f"unknown variable {name}") from None

    def set_var(self, name: str, ident: int) -> None:
        """Point a variable at a cell (no well-formedness enforcement)."""
        if name not in self.vars:
            raise StoreError(f"unknown variable {name}")
        self.cell(ident)  # must exist
        self.vars[name] = ident

    def first_garbage(self) -> Optional[int]:
        """The smallest-id garbage cell, or None when memory is full.

        The deterministic allocator used by both the interpreter and
        the symbolic engine (sound because store-logic satisfaction is
        isomorphism-invariant).
        """
        garbage = [ident for ident, cell in self._cells.items()
                   if cell.kind is CellKind.GARBAGE]
        return min(garbage) if garbage else None

    def record_ids(self) -> List[int]:
        """Ids of all record cells, ascending."""
        return sorted(ident for ident, cell in self._cells.items()
                      if cell.kind is CellKind.RECORD)

    def garbage_ids(self) -> List[int]:
        """Ids of all garbage cells, ascending."""
        return sorted(ident for ident, cell in self._cells.items()
                      if cell.kind is CellKind.GARBAGE)

    def list_of(self, data_var: str, limit: int = 1 << 20) -> List[int]:
        """The cell ids of a data variable's list, head first.

        Raises StoreError when the chain is broken (undefined next,
        cycle, or a non-record cell before nil).
        """
        result: List[int] = []
        seen = set()
        ident = self.var(data_var)
        while ident != NIL_ID:
            if ident in seen or len(result) > limit:
                raise StoreError(f"cycle in list of {data_var}")
            cell = self.cell(ident)
            if cell.kind is not CellKind.RECORD:
                raise StoreError(
                    f"list of {data_var} runs into a {cell.kind.value} cell")
            seen.add(ident)
            result.append(ident)
            if cell.next is None:
                if self._variant_has_field(cell):
                    raise StoreError(
                        f"list of {data_var}: cell {ident} has an "
                        f"undefined next field")
                break  # a variant without pointer field ends the list
            ident = cell.next
        return result

    def _variant_has_field(self, cell: Cell) -> bool:
        record = self.schema.record(cell.type_name or "")
        return record.field_of(cell.variant or "") is not None

    # ------------------------------------------------------------------
    # Well-formedness (paper §3)
    # ------------------------------------------------------------------

    def violations(self) -> List[str]:
        """All well-formedness violations, empty iff well-formed."""
        problems: List[str] = []
        problems.extend(self._check_cells())
        problems.extend(self._check_vars())
        owner = self._check_lists(problems)
        problems.extend(self._check_coverage(owner))
        return problems

    def is_well_formed(self) -> bool:
        """True iff the store satisfies all well-formedness rules."""
        return not self.violations()

    def _check_cells(self) -> List[str]:
        problems = []
        nil = self._cells.get(NIL_ID)
        if nil is None or nil.kind is not CellKind.NIL:
            problems.append("cell 0 is not the nil cell")
        for ident, cell in self._cells.items():
            if cell.kind is CellKind.NIL and ident != NIL_ID:
                problems.append(f"extra nil cell {ident}")
            if cell.kind is CellKind.GARBAGE and cell.next is not None:
                problems.append(f"garbage cell {ident} has an outgoing "
                                f"pointer")
        return problems

    def _check_vars(self) -> List[str]:
        problems = []
        for name, ident in self.vars.items():
            if ident == NIL_ID:
                continue
            cell = self._cells.get(ident)
            if cell is None or cell.kind is not CellKind.RECORD:
                problems.append(
                    f"variable {name} dangles (points at a non-record "
                    f"cell {ident})")
                continue
            expected = self.schema.var_type(name)
            if cell.type_name != expected:
                problems.append(
                    f"variable {name}: expected type {expected}, cell "
                    f"{ident} has type {cell.type_name}")
        return problems

    def _check_lists(self, problems: List[str]) -> Dict[int, str]:
        """Walk each data variable's list; returns cell -> owner map."""
        owner: Dict[int, str] = {}
        for name in self.schema.data_vars:
            ident = self.vars.get(name, NIL_ID)
            seen_here = set()
            while ident != NIL_ID:
                cell = self._cells.get(ident)
                if cell is None or cell.kind is not CellKind.RECORD:
                    problems.append(
                        f"list of {name} reaches non-record cell {ident}")
                    break
                if ident in seen_here:
                    problems.append(f"list of {name} is cyclic")
                    break
                if ident in owner:
                    problems.append(
                        f"cell {ident} is shared by lists {owner[ident]} "
                        f"and {name}")
                    break
                seen_here.add(ident)
                owner[ident] = name
                record = self.schema.records.get(cell.type_name or "")
                info = record.variants.get(cell.variant or "") \
                    if record else None
                if info is None:
                    if cell.next is not None:
                        problems.append(
                            f"cell {ident}: variant {cell.variant} has no "
                            f"pointer field but next is set")
                    break  # terminator variant ends the list
                if cell.next is None:
                    problems.append(
                        f"cell {ident} in list of {name} has an undefined "
                        f"next field")
                    break
                target = self._cells.get(cell.next)
                if cell.next != NIL_ID and (
                        target is None
                        or target.kind is not CellKind.RECORD
                        or target.type_name != info.target):
                    problems.append(
                        f"cell {ident}: next points at an invalid target "
                        f"{cell.next}")
                    break
                ident = cell.next
        return owner

    def _check_coverage(self, owner: Dict[int, str]) -> List[str]:
        problems = []
        for ident in self.record_ids():
            if ident not in owner:
                problems.append(
                    f"record cell {ident} is unclaimed (reachable from no "
                    f"data variable)")
        return problems

    # ------------------------------------------------------------------
    # Equality up to isomorphism-irrelevant details
    # ------------------------------------------------------------------

    def signature(self) -> Tuple:
        """A canonical description for comparing stores structurally.

        Two well-formed stores with equal signatures are isomorphic:
        the signature records, per data variable, the list of
        (type, variant) labels, the variable bindings expressed as
        (owning list, index) coordinates, and the garbage-cell count.
        """
        coordinates: Dict[int, Tuple[str, int]] = {}
        lists = []
        for name in self.schema.data_vars:
            ids = self.list_of(name)
            for index, ident in enumerate(ids):
                coordinates[ident] = (name, index)
            cells = tuple((self.cell(i).type_name, self.cell(i).variant)
                          for i in ids)
            lists.append((name, cells))
        bindings = []
        for name in sorted(self.vars):
            ident = self.vars[name]
            bindings.append((name, None if ident == NIL_ID
                             else coordinates.get(ident)))
        return (tuple(lists), tuple(bindings), len(self.garbage_ids()))
