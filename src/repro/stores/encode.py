"""The paper's store-as-string encoding (§3) and its inverse.

A well-formed store becomes a string over the *store alphabet*: each
symbol carries a **label** — ``nil``, ``garb``, ``lim``, or a record
``(T:v)`` pair — and a **bitmap** naming the program variables sitting
on that position.  The layout rules:

* position 0 (and no other) is labelled ``nil``;
* then, in data-variable declaration order, each list as its cells in
  list order followed by one ``lim`` symbol (an empty list is just the
  ``lim``);
* then the garbage cells;
* every variable occurs in exactly one bitmap: a data variable on the
  root of its list (on ``nil`` when empty), a pointer variable on its
  destination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Sequence, Tuple

from repro.errors import StoreError
from repro.stores.model import NIL_ID, Cell, CellKind, Store
from repro.stores.schema import Schema

#: Label of the distinguished nil position.
LABEL_NIL = ("nil",)
#: Label of deallocated (available) cells.
LABEL_GARB = ("garb",)
#: Label of the list delimiter symbols.
LABEL_LIM = ("lim",)

Label = Tuple[str, ...]


def record_label(type_name: str, variant: str) -> Label:
    """The label of a record cell of ``type_name`` and ``variant``."""
    return ("rec", type_name, variant)


@dataclass(frozen=True)
class Symbol:
    """One store-alphabet symbol: a label plus a variable bitmap."""

    label: Label
    bitmap: FrozenSet[str]

    def __str__(self) -> str:
        if self.label[0] == "rec":
            text = f"({self.label[1]}:{self.label[2]})"
        else:
            text = self.label[0]
        names = ",".join(sorted(self.bitmap))
        return f"[{text},{{{names}}}]"


def encode_store(store: Store) -> List[Symbol]:
    """Encode a well-formed store as its canonical symbol string.

    Raises StoreError when the store is not well-formed (the encoding
    is only defined on well-formed stores).
    """
    problems = store.violations()
    if problems:
        raise StoreError("cannot encode ill-formed store: "
                         + "; ".join(problems))
    position_of = {NIL_ID: 0}
    labels: List[Label] = [LABEL_NIL]
    for name in store.schema.data_vars:
        for ident in store.list_of(name):
            cell = store.cell(ident)
            position_of[ident] = len(labels)
            labels.append(record_label(cell.type_name or "",
                                       cell.variant or ""))
        labels.append(LABEL_LIM)
    for ident in store.garbage_ids():
        position_of[ident] = len(labels)
        labels.append(LABEL_GARB)
    bitmaps: List[set] = [set() for _ in labels]
    for name, ident in store.vars.items():
        bitmaps[position_of[ident]].add(name)
    return [Symbol(label, frozenset(bitmap))
            for label, bitmap in zip(labels, bitmaps)]


def decode_store(schema: Schema, symbols: Sequence[Symbol]) -> Store:
    """Decode a symbol string back into a concrete store.

    Cell ids equal string positions, so decoding and the symbolic
    engine agree on allocation order.  Raises StoreError when the
    string violates the encoding rules.
    """
    if not symbols or symbols[0].label != LABEL_NIL:
        raise StoreError("position 0 must be the nil symbol")
    store = Store(schema)
    # Cells are created directly at their string positions; lim
    # positions have no cell, so cell ids are sparse but ordered.
    segments: List[List[int]] = []
    current: List[int] = []
    data_names = list(schema.data_vars)
    in_garbage = False
    for position in range(1, len(symbols)):
        symbol = symbols[position]
        if symbol.label == LABEL_NIL:
            raise StoreError(f"extra nil symbol at position {position}")
        if symbol.label == LABEL_LIM:
            if in_garbage:
                raise StoreError(
                    f"lim symbol at position {position} after garbage")
            segments.append(current)
            current = []
            if len(segments) > len(data_names):
                raise StoreError("more lim symbols than data variables")
        elif symbol.label == LABEL_GARB:
            if len(segments) != len(data_names):
                raise StoreError(
                    f"garbage at position {position} before all lists "
                    f"were delimited")
            in_garbage = True
            store._cells[position] = Cell(position, CellKind.GARBAGE)
        else:
            if len(segments) == len(data_names):
                raise StoreError(
                    f"record cell at position {position} after the last "
                    f"list was delimited")
            kind, type_name, variant = (symbol.label + ("", ""))[:3]
            if kind != "rec" or not schema.variant_exists(type_name,
                                                          variant):
                raise StoreError(
                    f"unknown label {symbol.label} at position {position}")
            store._cells[position] = Cell(position, CellKind.RECORD,
                                          type_name, variant)
            current.append(position)
    if len(segments) != len(data_names):
        raise StoreError("missing lim symbols: found "
                         f"{len(segments)} of {len(data_names)}")
    store._next_id = len(symbols)
    _link_segments(store, schema, segments)
    _apply_bitmaps(store, schema, symbols, segments, data_names)
    return store


def _link_segments(store: Store, schema: Schema,
                   segments: List[List[int]]) -> None:
    for segment in segments:
        for here, there in zip(segment, segment[1:]):
            cell = store.cell(here)
            record = schema.record(cell.type_name or "")
            if record.field_of(cell.variant or "") is None:
                raise StoreError(
                    f"cell {here}: variant {cell.variant} has no pointer "
                    f"field but is followed by another cell")
            cell.next = there
        if segment:
            last = store.cell(segment[-1])
            record = schema.record(last.type_name or "")
            if record.field_of(last.variant or "") is not None:
                last.next = NIL_ID


def _apply_bitmaps(store: Store, schema: Schema,
                   symbols: Sequence[Symbol], segments: List[List[int]],
                   data_names: List[str]) -> None:
    placed: dict = {}
    for position, symbol in enumerate(symbols):
        for name in symbol.bitmap:
            if name in placed:
                raise StoreError(
                    f"variable {name} occurs in two bitmaps "
                    f"(positions {placed[name]} and {position})")
            placed[name] = position
    for name in schema.all_vars():
        if name not in placed:
            raise StoreError(f"variable {name} occurs in no bitmap")
    for index, name in enumerate(data_names):
        segment = segments[index]
        expected = segment[0] if segment else 0
        if placed[name] != expected:
            raise StoreError(
                f"data variable {name} must sit at position {expected}, "
                f"found at {placed[name]}")
        store.set_var(name, expected)
    for name in schema.pointer_vars:
        position = placed[name]
        label = symbols[position].label
        if label in (LABEL_LIM, LABEL_GARB):
            raise StoreError(
                f"pointer variable {name} sits on a {label[0]} symbol")
        store.set_var(name, position if label != LABEL_NIL else NIL_ID)
