"""Concrete stores and their string encodings (paper §3).

A *store* consists of a distinguished nil cell, record cells labelled
with a record type and variant, and garbage cells (deallocated
records).  Data variables own disjoint nil-terminated lists; pointer
variables may reference any record cell or nil.

* :mod:`repro.stores.schema` — the type information (enums, record
  types with variants, variable classification) shared by the type
  checker, the store model, and the logic translation;
* :mod:`repro.stores.model` — mutable concrete stores with a full
  well-formedness checker;
* :mod:`repro.stores.encode` — the paper's store-as-string encoding
  and its inverse;
* :mod:`repro.stores.render` — ASCII rendering of stores and symbol
  strings (the counterexample "cartoons").
"""

from repro.stores.schema import FieldInfo, RecordType, Schema
from repro.stores.model import Cell, CellKind, Store
from repro.stores.encode import (LABEL_GARB, LABEL_LIM, LABEL_NIL, Symbol,
                                 decode_store, encode_store, record_label)
from repro.stores.render import render_store, render_symbols

__all__ = [
    "Cell", "CellKind", "FieldInfo", "LABEL_GARB", "LABEL_LIM",
    "LABEL_NIL", "RecordType", "Schema", "Store", "Symbol",
    "decode_store", "encode_store", "record_label", "render_store",
    "render_symbols",
]
