"""Reduced ordered binary decision diagrams (ROBDDs).

A classic hash-consed BDD package in the style of Bryant's 1986 paper
(reference [1] of the reproduced paper).  Nodes are identified by small
integers; the two terminals are ``Bdd.FALSE == 0`` and ``Bdd.TRUE == 1``.
Variables are identified by their *level*: smaller levels are tested
first.  All operations are memoised, and because nodes are hash-consed,
two equivalent functions always have the same node index.

Example:
    >>> m = Bdd()
    >>> x, y = m.var(0), m.var(1)
    >>> f = m.and_(x, m.not_(y))
    >>> m.evaluate(f, {0: True, 1: False})
    True
    >>> m.sat_count(f, num_vars=2)
    1
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.robust.budget import check_nodes as _budget_check_nodes
from repro.robust.budget import tick as _budget_tick
from repro.robust.recursion import deep_recursion

#: Node-cap checks run once per this-many + 1 node creations.
_NODE_CHECK_MASK = 0x3FF


class Bdd:
    """A manager owning a universe of hash-consed ROBDD nodes.

    Node indices are only meaningful relative to their manager; never
    mix nodes from two managers.
    """

    FALSE = 0
    TRUE = 1

    def __init__(self) -> None:
        # _nodes[i] = (level, lo, hi); entries 0/1 are dummy terminals.
        self._nodes: List[Tuple[int, int, int]] = [(-1, 0, 0), (-1, 1, 1)]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._apply_memo: Dict[Tuple[object, int, int], int] = {}
        self._not_memo: Dict[int, int] = {}
        self._ite_memo: Dict[Tuple[int, int, int], int] = {}
        self._quant_memo: Dict[Tuple[int, int, frozenset], int] = {}
        self._restrict_memo: \
            Dict[Tuple[int, Tuple[Tuple[int, bool], ...]], int] = {}
        self._compose_memo: Dict[Tuple[int, int, int], int] = {}
        # Always-on cache statistics (plain ints on the hot recursions).
        self.apply_hits = 0
        self.apply_misses = 0
        self.ite_hits = 0
        self.ite_misses = 0
        self.quant_hits = 0
        self.quant_misses = 0
        self.restrict_hits = 0
        self.restrict_misses = 0

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    def node(self, level: int, lo: int, hi: int) -> int:
        """Return the (hash-consed) node testing ``level``.

        Applies the ROBDD reduction rule: if both branches coincide the
        node is redundant and the branch itself is returned.
        """
        if lo == hi:
            return lo
        key = (level, lo, hi)
        found = self._unique.get(key)
        if found is not None:
            return found
        index = len(self._nodes)
        self._nodes.append(key)
        self._unique[key] = index
        if (index & _NODE_CHECK_MASK) == 0:
            _budget_check_nodes("bdd.node", index)
        return index

    def var(self, level: int) -> int:
        """The function of the single variable ``level``."""
        return self.node(level, self.FALSE, self.TRUE)

    def nvar(self, level: int) -> int:
        """The negation of the single variable ``level``."""
        return self.node(level, self.TRUE, self.FALSE)

    def literal(self, level: int, positive: bool) -> int:
        """A positive or negative literal of ``level``."""
        return self.var(level) if positive else self.nvar(level)

    def is_terminal(self, f: int) -> bool:
        """True iff ``f`` is one of the two constants."""
        return f <= self.TRUE

    def level(self, f: int) -> int:
        """The decision level of node ``f`` (``-1`` for terminals)."""
        return self._nodes[f][0]

    def low(self, f: int) -> int:
        """The else-branch of node ``f``."""
        return self._nodes[f][1]

    def high(self, f: int) -> int:
        """The then-branch of node ``f``."""
        return self._nodes[f][2]

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def unique_table_size(self) -> int:
        """Internal (decision) nodes in the unique table."""
        return len(self._unique)

    @property
    def peak_nodes(self) -> int:
        """Total nodes ever created (never freed, so also the peak)."""
        return len(self._nodes)

    def cache_stats(self) -> Dict[str, int]:
        """Memo-cache hit/miss counters and table sizes, JSON-ready."""
        return {
            "apply_hits": self.apply_hits,
            "apply_misses": self.apply_misses,
            "ite_hits": self.ite_hits,
            "ite_misses": self.ite_misses,
            "quant_hits": self.quant_hits,
            "quant_misses": self.quant_misses,
            "restrict_hits": self.restrict_hits,
            "restrict_misses": self.restrict_misses,
            "unique_table_size": self.unique_table_size,
            "peak_nodes": self.peak_nodes,
        }

    # ------------------------------------------------------------------
    # Boolean algebra
    # ------------------------------------------------------------------

    def not_(self, f: int) -> int:
        """Negation.

        Iterative (explicit work stack): depth-proof against long
        variable chains.
        """
        memo = self._not_memo
        nodes = self._nodes
        stack = [f]
        while stack:
            g = stack[-1]
            if g <= self.TRUE or g in memo:
                stack.pop()
                continue
            level, lo, hi = nodes[g]
            n_lo = self.TRUE - lo if lo <= self.TRUE else memo.get(lo)
            n_hi = self.TRUE - hi if hi <= self.TRUE else memo.get(hi)
            if n_lo is None:
                stack.append(lo)
            if n_hi is None:
                stack.append(hi)
            if n_lo is not None and n_hi is not None:
                memo[g] = self.node(level, n_lo, n_hi)
                stack.pop()
        if f <= self.TRUE:
            return self.TRUE - f
        return memo[f]

    def _apply(self, name: str, op: Callable[[int, int], Optional[int]],
               f: int, g: int) -> int:
        """Shannon-expansion apply of a binary operator.

        ``op`` returns a terminal when the result is decided by its
        arguments alone (short-circuit table), else ``None``.

        Iterative (explicit work stack), so deep variable chains
        cannot overflow the interpreter stack; this is the hottest
        recursion of the package.  Also a budget cancellation point
        (one tick per computed pair).
        """
        memo = self._apply_memo
        nodes = self._nodes

        def resolve(a: int, b: int) -> Optional[int]:
            decided = op(a, b)
            if decided is not None:
                return decided
            return memo.get((name, a, b))

        result = resolve(f, g)
        if result is not None:
            self.apply_hits += 1
            return result
        stack: List[Tuple[int, int]] = [(f, g)]
        while stack:
            a, b = stack[-1]
            key = (name, a, b)
            if key in memo:
                stack.pop()
                continue
            level_a, level_b = nodes[a][0], nodes[b][0]
            if a <= self.TRUE:
                top = level_b
            elif b <= self.TRUE:
                top = level_a
            else:
                top = min(level_a, level_b)
            a_lo, a_hi = (a, a) if a <= self.TRUE or level_a != top else \
                (nodes[a][1], nodes[a][2])
            b_lo, b_hi = (b, b) if b <= self.TRUE or level_b != top else \
                (nodes[b][1], nodes[b][2])
            lo = resolve(a_lo, b_lo)
            hi = resolve(a_hi, b_hi)
            if lo is None:
                stack.append((a_lo, b_lo))
            if hi is None:
                stack.append((a_hi, b_hi))
            if lo is not None and hi is not None:
                self.apply_misses += 1
                _budget_tick("bdd.apply")
                memo[key] = self.node(top, lo, hi)
                stack.pop()
        return memo[(name, f, g)]

    def and_(self, f: int, g: int) -> int:
        """Conjunction."""
        def op(a: int, b: int) -> Optional[int]:
            if a == self.FALSE or b == self.FALSE:
                return self.FALSE
            if a == self.TRUE:
                return b
            if b == self.TRUE:
                return a
            if a == b:
                return a
            return None
        return self._apply("and", op, f, g)

    def or_(self, f: int, g: int) -> int:
        """Disjunction."""
        def op(a: int, b: int) -> Optional[int]:
            if a == self.TRUE or b == self.TRUE:
                return self.TRUE
            if a == self.FALSE:
                return b
            if b == self.FALSE:
                return a
            if a == b:
                return a
            return None
        return self._apply("or", op, f, g)

    def xor(self, f: int, g: int) -> int:
        """Exclusive or."""
        def op(a: int, b: int) -> Optional[int]:
            if a == b:
                return self.FALSE
            if a == self.FALSE:
                return b
            if b == self.FALSE:
                return a
            if a == self.TRUE:
                return self.not_(b)
            if b == self.TRUE:
                return self.not_(a)
            return None
        return self._apply("xor", op, f, g)

    def implies(self, f: int, g: int) -> int:
        """Implication ``f -> g``."""
        return self.or_(self.not_(f), g)

    def iff(self, f: int, g: int) -> int:
        """Bi-implication."""
        return self.not_(self.xor(f, g))

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``(f & g) | (~f & h)``, computed directly."""
        if f == self.TRUE:
            return g
        if f == self.FALSE:
            return h
        if g == h:
            return g
        if g == self.TRUE and h == self.FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_memo.get(key)
        if cached is not None:
            self.ite_hits += 1
            return cached
        self.ite_misses += 1
        top = min(self._top_level(f), self._top_level(g), self._top_level(h))
        result = self.node(
            top,
            self.ite(self._cofactor(f, top, False),
                     self._cofactor(g, top, False),
                     self._cofactor(h, top, False)),
            self.ite(self._cofactor(f, top, True),
                     self._cofactor(g, top, True),
                     self._cofactor(h, top, True)))
        self._ite_memo[key] = result
        return result

    def _top_level(self, f: int) -> int:
        level = self._nodes[f][0]
        return level if level >= 0 else 1 << 60

    def _cofactor(self, f: int, level: int, value: bool) -> int:
        if self.is_terminal(f) or self._nodes[f][0] != level:
            return f
        return self._nodes[f][2] if value else self._nodes[f][1]

    # ------------------------------------------------------------------
    # Substitution and quantification
    # ------------------------------------------------------------------

    def restrict(self, f: int, assignment: Dict[int, bool]) -> int:
        """Substitute constants for the given variables."""
        frozen = tuple(sorted(assignment.items()))
        with deep_recursion():
            return self._restrict(f, frozen, dict(assignment))

    def _restrict(self, f: int, frozen: Tuple[Tuple[int, bool], ...],
                  assignment: Dict[int, bool]) -> int:
        if self.is_terminal(f):
            return f
        key = (f, frozen)
        cached = self._restrict_memo.get(key)
        if cached is not None:
            self.restrict_hits += 1
            return cached
        self.restrict_misses += 1
        _budget_tick("bdd.restrict")
        level, lo, hi = self._nodes[f]
        if level in assignment:
            result = self._restrict(hi if assignment[level] else lo,
                                    frozen, assignment)
        else:
            result = self.node(level,
                               self._restrict(lo, frozen, assignment),
                               self._restrict(hi, frozen, assignment))
        self._restrict_memo[key] = result
        return result

    def exists(self, f: int, levels: Iterable[int]) -> int:
        """Existentially quantify the given variables."""
        level_set = frozenset(levels)
        if not level_set:
            return f
        with deep_recursion():
            return self._quantify(f, level_set, disjunction=True)

    def forall(self, f: int, levels: Iterable[int]) -> int:
        """Universally quantify the given variables."""
        level_set = frozenset(levels)
        if not level_set:
            return f
        with deep_recursion():
            return self._quantify(f, level_set, disjunction=False)

    def _quantify(self, f: int, levels: frozenset, disjunction: bool) -> int:
        if self.is_terminal(f):
            return f
        key = (f, 1 if disjunction else 0, levels)
        cached = self._quant_memo.get(key)
        if cached is not None:
            self.quant_hits += 1
            return cached
        self.quant_misses += 1
        _budget_tick("bdd.quantify")
        level, lo, hi = self._nodes[f]
        q_lo = self._quantify(lo, levels, disjunction)
        q_hi = self._quantify(hi, levels, disjunction)
        if level in levels:
            result = self.or_(q_lo, q_hi) if disjunction else \
                self.and_(q_lo, q_hi)
        else:
            result = self.node(level, q_lo, q_hi)
        self._quant_memo[key] = result
        return result

    def compose(self, f: int, level: int, g: int) -> int:
        """Substitute the function ``g`` for variable ``level`` in ``f``."""
        key = (f, level, g)
        cached = self._compose_memo.get(key)
        if cached is not None:
            return cached
        if self.is_terminal(f) or self._nodes[f][0] > level:
            result = f
        else:
            node_level, lo, hi = self._nodes[f]
            if node_level == level:
                result = self.ite(g, hi, lo)
            else:
                result = self.ite(self.var(node_level),
                                  self.compose(hi, level, g),
                                  self.compose(lo, level, g))
        self._compose_memo[key] = result
        return result

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def evaluate(self, f: int, assignment: Dict[int, bool]) -> bool:
        """Evaluate under a total assignment of the support of ``f``."""
        while not self.is_terminal(f):
            level, lo, hi = self._nodes[f]
            f = hi if assignment.get(level, False) else lo
        return f == self.TRUE

    def support(self, f: int) -> frozenset:
        """The set of variable levels ``f`` depends on."""
        seen: set = set()
        levels: set = set()
        stack = [f]
        while stack:
            g = stack.pop()
            if g in seen or self.is_terminal(g):
                continue
            seen.add(g)
            level, lo, hi = self._nodes[g]
            levels.add(level)
            stack.append(lo)
            stack.append(hi)
        return frozenset(levels)

    def node_count(self, f: int) -> int:
        """Number of distinct internal nodes reachable from ``f``."""
        seen: set = set()
        stack = [f]
        while stack:
            g = stack.pop()
            if g in seen or self.is_terminal(g):
                continue
            seen.add(g)
            stack.append(self._nodes[g][1])
            stack.append(self._nodes[g][2])
        return len(seen)

    def sat_count(self, f: int, num_vars: int) -> int:
        """Number of satisfying assignments over variables ``0..num_vars-1``.

        Every variable in the support of ``f`` must be below
        ``num_vars``.
        """
        memo: Dict[int, Tuple[int, int]] = {}

        def count(g: int) -> Tuple[int, int]:
            """Return (count, level) where count is over vars >= level."""
            if g == self.FALSE:
                return 0, num_vars
            if g == self.TRUE:
                return 1, num_vars
            cached = memo.get(g)
            if cached is not None:
                return cached
            level, lo, hi = self._nodes[g]
            lo_count, lo_level = count(lo)
            hi_count, hi_level = count(hi)
            total = (lo_count << (lo_level - level - 1)) + \
                (hi_count << (hi_level - level - 1))
            memo[g] = (total, level)
            return total, level

        with deep_recursion():
            total, top = count(f)
        return total << top

    def any_sat(self, f: int) -> Optional[Dict[int, bool]]:
        """Some satisfying partial assignment, or None if unsatisfiable.

        Variables absent from the result are don't-cares.
        """
        if f == self.FALSE:
            return None
        assignment: Dict[int, bool] = {}
        while not self.is_terminal(f):
            level, lo, hi = self._nodes[f]
            if lo != self.FALSE:
                assignment[level] = False
                f = lo
            else:
                assignment[level] = True
                f = hi
        return assignment

    def all_sat(self, f: int, levels: List[int]) -> Iterator[Dict[int, bool]]:
        """Enumerate all total assignments over ``levels`` satisfying ``f``.

        ``levels`` must be sorted ascending and contain the support.
        """
        def go(g: int, index: int,
               acc: Dict[int, bool]) -> Iterator[Dict[int, bool]]:
            if index == len(levels):
                if g == self.TRUE:
                    yield dict(acc)
                return
            level = levels[index]
            node_level = self._nodes[g][0] if not self.is_terminal(g) else -1
            for value in (False, True):
                if g == self.FALSE:
                    return
                if node_level == level:
                    branch = self._nodes[g][2] if value else self._nodes[g][1]
                else:
                    branch = g
                acc[level] = value
                yield from go(branch, index + 1, acc)
            del acc[level]

        yield from go(f, 0, {})

    def to_expr(self, f: int, names: Optional[Dict[int, str]] = None) -> str:
        """A readable if-then-else expression string, for debugging."""
        if f == self.FALSE:
            return "false"
        if f == self.TRUE:
            return "true"
        level, lo, hi = self._nodes[f]
        name = names.get(level, f"v{level}") if names else f"v{level}"
        return (f"({name} ? {self.to_expr(hi, names)}"
                f" : {self.to_expr(lo, names)})")
