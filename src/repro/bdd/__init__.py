"""Binary decision diagrams.

Two managers live here:

* :class:`repro.bdd.robdd.Bdd` — classic reduced ordered *Boolean* BDDs
  (terminals ``0``/``1``), with the full algebra (apply, ite, restrict,
  quantification, model counting and enumeration).
* :class:`repro.bdd.mtbdd.Mtbdd` — *multi-terminal* BDDs whose leaves
  are arbitrary hashable values.  The symbolic automata in
  :mod:`repro.automata.symbolic` store one MTBDD per state, with target
  states (or sets of states during determinisation) as leaves.  This is
  the representation that made Mona practical (paper §6).

Both managers hash-cons nodes, so structural equality of diagrams is
pointer equality of node indices, and memoised operations are cheap.
"""

from repro.bdd.robdd import Bdd
from repro.bdd.mtbdd import Mtbdd

__all__ = ["Bdd", "Mtbdd"]
