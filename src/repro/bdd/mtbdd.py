"""Multi-terminal binary decision diagrams (MTBDDs).

An MTBDD maps bit-vector assignments to arbitrary hashable *leaf*
values.  The symbolic automata of :mod:`repro.automata.symbolic` keep
one MTBDD per state whose leaves are target states; during subset
construction the leaves are frozensets of states.  This mirrors the
Mona representation the paper credits for making the decision procedure
feasible (§6: "transition functions are encoded as binary decision
diagrams").

Nodes are hash-consed, so diagram equality is index equality, and the
number of distinct reachable nodes is the paper's "Nodes" statistic.

Example:
    >>> m = Mtbdd()
    >>> f = m.node(0, m.leaf("a"), m.leaf("b"))
    >>> m.evaluate(f, {0: True})
    'b'
"""

from __future__ import annotations

from typing import (Callable, Dict, Hashable, Iterator, List, Optional,
                    Tuple)

from repro.robust.budget import check_nodes as _budget_check_nodes
from repro.robust.budget import tick as _budget_tick

#: Sentinel level for leaves; larger than any real variable level so the
#: usual top-variable computation treats leaves as "below" every node.
LEAF_LEVEL = 1 << 60

#: Node-cap checks run once per this-many + 1 node creations.
_NODE_CHECK_MASK = 0x3FF


class Mtbdd:
    """A manager owning a universe of hash-consed MTBDD nodes."""

    def __init__(self) -> None:
        # Internal nodes are (level, lo, hi); leaves are
        # (LEAF_LEVEL, value, None).
        self._nodes: List[Tuple[int, object, object]] = []
        self._unique: Dict[Tuple[int, object, object], int] = {}
        self._leaf_index: Dict[Hashable, int] = {}
        self._apply_memo: Dict[Tuple[object, int, int], int] = {}
        self._map_memo: Dict[Tuple[object, int], int] = {}
        self._restrict_memo: Dict[
            Tuple[int, Tuple[Tuple[int, bool], ...]], int] = {}
        # Always-on cache statistics (plain ints: these sit inside the
        # hottest recursions, so no registry indirection).  A "hit" is
        # a memo-table return; a "miss" is a computed-and-inserted
        # result.  Recursive calls count individually.
        self.apply_hits = 0
        self.apply_misses = 0
        self.map_hits = 0
        self.map_misses = 0
        self.restrict_hits = 0
        self.restrict_misses = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def leaf(self, value: Hashable) -> int:
        """Return the leaf node carrying ``value`` (hash-consed)."""
        found = self._leaf_index.get(value)
        if found is not None:
            return found
        index = len(self._nodes)
        self._nodes.append((LEAF_LEVEL, value, None))
        self._leaf_index[value] = index
        return index

    def node(self, level: int, lo: int, hi: int) -> int:
        """Return the node testing ``level`` (reduced and hash-consed)."""
        if lo == hi:
            return lo
        key = (level, lo, hi)
        found = self._unique.get(key)
        if found is not None:
            return found
        index = len(self._nodes)
        self._nodes.append(key)
        self._unique[key] = index
        if (index & _NODE_CHECK_MASK) == 0:
            _budget_check_nodes("bdd.node", index)
        return index

    def is_leaf(self, f: int) -> bool:
        """True iff ``f`` carries a value rather than a decision."""
        return self._nodes[f][0] == LEAF_LEVEL

    def leaf_value(self, f: int) -> Hashable:
        """The value carried by leaf ``f``."""
        level, value, _ = self._nodes[f]
        if level != LEAF_LEVEL:
            raise ValueError(f"node {f} is not a leaf")
        return value

    def level(self, f: int) -> int:
        """Decision level of ``f`` (``LEAF_LEVEL`` for leaves)."""
        return self._nodes[f][0]

    def low(self, f: int) -> int:
        """Else-branch of internal node ``f``."""
        return self._nodes[f][1]  # type: ignore[return-value]

    def high(self, f: int) -> int:
        """Then-branch of internal node ``f``."""
        return self._nodes[f][2]  # type: ignore[return-value]

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def unique_table_size(self) -> int:
        """Internal (decision) nodes in the unique table."""
        return len(self._unique)

    @property
    def peak_nodes(self) -> int:
        """Total nodes ever created (nodes are never freed, so this is
        also the peak live count — the paper's space measure)."""
        return len(self._nodes)

    def cache_stats(self) -> Dict[str, int]:
        """Memo-cache hit/miss counters and table sizes, JSON-ready."""
        return {
            "apply_hits": self.apply_hits,
            "apply_misses": self.apply_misses,
            "map_hits": self.map_hits,
            "map_misses": self.map_misses,
            "restrict_hits": self.restrict_hits,
            "restrict_misses": self.restrict_misses,
            "unique_table_size": self.unique_table_size,
            "peak_nodes": self.peak_nodes,
        }

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------

    def apply2(self, op_key: Hashable,
               op: Callable[[Hashable, Hashable], Hashable],
               f: int, g: int) -> int:
        """Combine two MTBDDs leaf-wise with the binary operator ``op``.

        ``op_key`` must uniquely identify ``op`` for memoisation (use a
        string or the function object itself if it is a module-level
        function).
        """
        key = (op_key, f, g)
        cached = self._apply_memo.get(key)
        if cached is not None:
            self.apply_hits += 1
            return cached
        self.apply_misses += 1
        _budget_tick("bdd.apply")
        level_f, level_g = self._nodes[f][0], self._nodes[g][0]
        if level_f == LEAF_LEVEL and level_g == LEAF_LEVEL:
            result = self.leaf(op(self.leaf_value(f), self.leaf_value(g)))
        else:
            top = min(level_f, level_g)
            f_lo, f_hi = (f, f) if level_f != top else \
                (self._nodes[f][1], self._nodes[f][2])
            g_lo, g_hi = (g, g) if level_g != top else \
                (self._nodes[g][1], self._nodes[g][2])
            result = self.node(
                top,
                self.apply2(op_key, op, f_lo, g_lo),   # type: ignore[arg-type]
                self.apply2(op_key, op, f_hi, g_hi))   # type: ignore[arg-type]
        self._apply_memo[key] = result
        return result

    def map_leaves(self, op_key: Hashable,
                   op: Callable[[Hashable], Hashable], f: int) -> int:
        """Rewrite every leaf value through ``op``."""
        key = (op_key, f)
        cached = self._map_memo.get(key)
        if cached is not None:
            self.map_hits += 1
            return cached
        self.map_misses += 1
        _budget_tick("bdd.map")
        level, lo, hi = self._nodes[f]
        if level == LEAF_LEVEL:
            result = self.leaf(op(lo))
        else:
            mapped_lo = self.map_leaves(op_key, op, lo)
            mapped_hi = self.map_leaves(op_key, op, hi)
            result = self.node(level, mapped_lo,  # type: ignore[arg-type]
                               mapped_hi)  # type: ignore[arg-type]
        self._map_memo[key] = result
        return result

    def restrict(self, f: int, assignment: Dict[int, bool]) -> int:
        """Fix the given decision variables to constants."""
        frozen = tuple(sorted(assignment.items()))
        if not frozen:
            return f
        return self._restrict(f, frozen, assignment)

    def _restrict(self, f: int, frozen: Tuple[Tuple[int, bool], ...],
                  assignment: Dict[int, bool]) -> int:
        level, lo, hi = self._nodes[f]
        if level == LEAF_LEVEL:
            return f
        key = (f, frozen)
        cached = self._restrict_memo.get(key)
        if cached is not None:
            self.restrict_hits += 1
            return cached
        self.restrict_misses += 1
        _budget_tick("bdd.restrict")
        if level in assignment:
            branch: int = hi if assignment[level] else lo
            result = self._restrict(branch, frozen, assignment)
        else:
            restricted_lo = self._restrict(
                lo, frozen, assignment)  # type: ignore[arg-type]
            restricted_hi = self._restrict(
                hi, frozen, assignment)  # type: ignore[arg-type]
            result = self.node(level, restricted_lo, restricted_hi)
        self._restrict_memo[key] = result
        return result

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def evaluate(self, f: int, assignment: Dict[int, bool]) -> Hashable:
        """Follow the decisions under ``assignment`` to a leaf value.

        Missing variables default to ``False``.
        """
        while not self.is_leaf(f):
            level, lo, hi = self._nodes[f]
            f = (hi if assignment.get(level, False)
                 else lo)  # type: ignore[assignment]
        return self.leaf_value(f)

    def leaves(self, f: int) -> frozenset:
        """The set of leaf values reachable from ``f``."""
        seen: set = set()
        values: set = set()
        stack = [f]
        while stack:
            g = stack.pop()
            if g in seen:
                continue
            seen.add(g)
            level, lo, hi = self._nodes[g]
            if level == LEAF_LEVEL:
                values.add(lo)
            else:
                stack.append(lo)  # type: ignore[arg-type]
                stack.append(hi)  # type: ignore[arg-type]
        return frozenset(values)

    def support(self, f: int) -> frozenset:
        """The set of decision levels ``f`` depends on."""
        seen: set = set()
        levels: set = set()
        stack = [f]
        while stack:
            g = stack.pop()
            if g in seen:
                continue
            seen.add(g)
            level, lo, hi = self._nodes[g]
            if level != LEAF_LEVEL:
                levels.add(level)
                stack.append(lo)  # type: ignore[arg-type]
                stack.append(hi)  # type: ignore[arg-type]
        return frozenset(levels)

    def node_count(self, f: int) -> int:
        """Number of distinct internal (decision) nodes under ``f``."""
        seen: set = set()
        count = 0
        stack = [f]
        while stack:
            g = stack.pop()
            if g in seen:
                continue
            seen.add(g)
            level, lo, hi = self._nodes[g]
            if level != LEAF_LEVEL:
                count += 1
                stack.append(lo)  # type: ignore[arg-type]
                stack.append(hi)  # type: ignore[arg-type]
        return count

    def paths(self, f: int) -> Iterator[Tuple[Dict[int, bool], Hashable]]:
        """Iterate over all (partial assignment, leaf value) paths.

        Variables not mentioned in the assignment are don't-cares for
        that path.
        """
        def go(g: int,
               acc: Dict[int, bool]) -> Iterator[Tuple[Dict[int, bool],
                                                       Hashable]]:
            level, lo, hi = self._nodes[g]
            if level == LEAF_LEVEL:
                yield dict(acc), lo
                return
            acc[level] = False
            yield from go(lo, acc)  # type: ignore[arg-type]
            acc[level] = True
            yield from go(hi, acc)  # type: ignore[arg-type]
            del acc[level]

        yield from go(f, {})

    def find_leaf(self, f: int, want: Callable[[Hashable], bool]
                  ) -> Optional[Dict[int, bool]]:
        """A partial assignment reaching some leaf satisfying ``want``.

        Returns None when no such leaf is reachable.
        """
        for assignment, value in self.paths(f):
            if want(value):
                return assignment
        return None
