"""Driving the M2L engine directly, in Mona-like syntax.

The verifier sits on a general decision procedure for monadic
second-order logic on finite strings — the paper's substrate (§6).
This example uses it standalone through :func:`repro.mso.parse_m2l`:
write a formula, get an automaton, decide validity, count models.

Run with::

    python examples/m2l_playground.py
"""

from repro.mso import Compiler, parse_m2l


def decide(title: str, text: str) -> None:
    formula, _ = parse_m2l(text)
    compiler = Compiler()
    valid = compiler.is_valid(formula)
    print(f"  {title:52} {'valid' if valid else 'NOT valid':9} "
          f"(max {compiler.stats.max_states} states)")


def main() -> None:
    print("Deciding M2L-Str formulas:")
    decide("< is transitive",
           "a < b & b < c => a < c")
    decide("induction from 0 along successor",
           "(ex1 z: z = 0 & z in X) "
           "& (all1 a, b: a in X & b = a + 1 => b in X) "
           "=> (ex1 l: l = $ & l in X)")
    decide("order is reachability (2nd-order definition)",
           "a <= b <=> (all2 S: (a in S & "
           "(all1 u, v: u in S & v = u + 1 => v in S)) => b in S)")
    decide("every position set has a minimum",
           "~empty(X) => (ex1 m: m in X & "
           "(all1 o: o in X => (m < o | m = o)))")
    decide("sets are totally ordered by sub (they are not)",
           "X sub Y | Y sub X")

    # Language view: a formula with free variables is a regular
    # language of (string, assignment) words.
    print()
    formula, free = parse_m2l(
        "all1 a, b: a in X & b = a + 1 => ~(b in X)")
    compiler = Compiler()
    automaton = compiler.compile(formula)
    print("'X has no two adjacent positions' compiles to "
          f"{automaton.num_states} states, "
          f"{automaton.bdd_node_count()} BDD nodes")
    track = compiler.tracks()[free["X"]]
    # Count the X-assignments per string length n: the Fibonacci-like
    # count of independent sets on a path.
    for n in range(1, 8):
        import itertools
        count = sum(
            1 for bits in itertools.product([False, True], repeat=n)
            if automaton.accepts([{track: bit} for bit in bits]))
        print(f"  strings of length {n}: {count} valid subsets")


if __name__ == "__main__":
    main()
