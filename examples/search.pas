program search;
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;

{data} var x: List;
{pointer} var p: List;
begin
  p := x;
  while p <> nil and p^.tag <> blue do
    {x<next*>p & (all q: (x<next*>q & q<next+>p) => <(List:red)?>q)}
    p := p^.next
  {x<next*>p & (p = nil | <(List:blue)?>p)
    & (all q: (x<next*>q & q<next+>p) => <(List:red)?>q)}
end.
