program scan;
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;

{data} var x: List;
{pointer} var p, t: List;
begin
  t := x;
  p := x;
  while p <> nil do begin
    t := p;
    p := p^.next
  end;
  t := nil
end.
