program insert;
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;

{data} var x: List;
{pointer} var p, q: List;
begin
  {x<next*>p & (x = nil <=> p = nil)}
  if p <> nil then begin
    q := p^.next;
    new(p^.next, red);
    p := p^.next;
    p^.next := q
  end else begin
    q := x;
    new(x, red);
    p := x;
    p^.next := q
  end
  {x<next*>p & p <> nil & <(List:red)?>p}
end.
