program searchwf;
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;

{data} var x: List;
{pointer} var p: List;
begin
  p := x;
  while p <> nil and p^.tag <> blue do
    p := p^.next
end.
