"""Quickstart: verify the paper's list-reversal program.

Run with::

    python examples/quickstart.py

The program is annotated with a precondition ``{y = nil}``, a
postcondition ``{x = nil}``, and no loop invariant — the system's
default invariant (store well-formedness) suffices.  Verification
proves, for *every* well-formed initial store with ``y = nil``:

* no nil or dangling dereference ever happens;
* no memory is leaked and no cell is freed twice;
* afterwards ``x`` is empty and ``y`` holds a well-formed list.
"""

from repro import format_result, verify_source

REVERSE = """
program reverse;
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;
{data} var x, y: List;
{pointer} var p: List;
begin
  {y = nil}
  while x <> nil do begin
    p := x^.next;
    x^.next := y;
    y := x;
    x := p
  end
  {x = nil}
end.
"""


def main() -> None:
    result = verify_source(REVERSE)
    print(format_result(result))
    print()
    if result.valid:
        print("reverse is verified: memory-safe on every input list, "
              "leaves x empty and y well-formed.")
    else:
        print(result.counterexample.render())


if __name__ == "__main__":
    main()
