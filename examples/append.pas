program append;
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;

{data} var x, y: List;
{pointer} var p: List;
begin
  {x <> nil}
  p := x;
  while p^.next <> nil do
    {x<next*>p & p <> nil}
    p := p^.next;
  p^.next := y;
  y := nil
  {y = nil & x<next*>p & p <> nil}
end.
