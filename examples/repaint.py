"""Repainting a cell: dispose + new recycles the same address.

A record cell's variant tag is fixed at allocation (the tag carries
the data in the paper's model), so "changing the colour" of a list's
head means deallocating it and allocating a replacement.  Under the
deterministic allocator — ``new`` converts the *lowest-position*
garbage cell, mirroring the paper's string encoding where fresh cells
come from the garbage suffix — starting from a garbage-free store the
freshly disposed cell is exactly the one ``new`` hands back.

The verifier can prove all of this: ``repaint`` turns a red head blue,
preserves the rest of the list, leaves no garbage behind, and never
dangles — including the transient moment where ``x`` points at a
deallocated cell.

Run with::

    python examples/repaint.py
"""

from repro import format_result, verify_source
from repro.exec.interpreter import Interpreter
from repro.pascal import check_program, parse_program
from repro.stores import Store, render_store

REPAINT = """
program repaint;
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;
{data} var x: List;
{pointer} var p, q: List;
begin
  {<(List:red)?>x & p = nil & q = nil & ~(ex g: <garb?>g)}
  q := x^.next;
  dispose(x, red);
  new(x, blue);
  x^.next := q;
  q := nil
  {<(List:blue)?>x & ~(ex g: <garb?>g)}
end.
"""


def main() -> None:
    result = verify_source(REPAINT)
    print(format_result(result))
    print()

    # Watch it run: the head cell is recycled in place.
    program = check_program(parse_program(REPAINT))
    store = Store(program.schema)
    store.make_list("x", ["red", "blue", "red"])
    head_before = store.var("x")
    print("before:")
    print(render_store(store))
    Interpreter(program).run(store)
    print("after:")
    print(render_store(store))
    print()
    print(f"head cell id before: {head_before}, after: "
          f"{store.var('x')} (same address, new variant)")


if __name__ == "__main__":
    main()
