program triple;
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;

{data} var x: List;
{pointer} var p, q: List;
begin
  {x<next*>p & p^.next = nil}
  new(q, blue);
  q^.next := nil;
  p^.next := q
  {x<next*>q & q^.next = nil & p <> q}
end.
