"""The §7 tree experiment, hands on.

The paper asks "Can we include trees?" and answers that M2L on trees
is decidable but its preliminary implementation was "much more
computationally intensive" than strings.  This example drives our
reproduction of that decision procedure directly: validity checking
and smallest-model synthesis over finite binary trees.

Run with::

    python examples/tree_logic.py
"""

import time

from repro.mso.ast import Var
from repro.treemso import ast as t
from repro.treemso.compile import TreeCompiler


def check(title: str, formula: t.TFormula) -> None:
    compiler = TreeCompiler()
    started = time.perf_counter()
    valid = compiler.is_valid(formula)
    elapsed = time.perf_counter() - started
    print(f"  {title:55} {'valid' if valid else 'NOT valid':9} "
          f"({elapsed:.3f}s, max {compiler.stats.max_states} states)")


def main() -> None:
    x, y, z = (Var.first(n) for n in ("x", "y", "z"))
    X = Var.second("X")

    print("Deciding tree-logic formulas (M2L on finite binary trees):")
    check("ancestor is transitive",
          t.TImplies(t.TAnd(t.Anc(x, y), t.Anc(y, z)), t.Anc(x, z)))
    check("a left child is a descendant",
          t.TImplies(t.Child0(x, y), t.Anc(x, y)))
    check("the root has no ancestor",
          t.TImplies(t.TAnd(t.Root(x), t.Anc(y, x)), t.TFALSE))
    check("ancestor is total (it is not: siblings!)",
          t.TImplies(t.TNot(t.EqF(x, y)),
                     t.TOr(t.Anc(x, y), t.Anc(y, x))))

    r, a, b, c = (Var.first(n) for n in ("r", "a", "b", "c"))
    closed = t.TAll1(a, t.TAll1(b, t.TImplies(
        t.TAnd(t.TMem(a, X), t.TOr(t.Child0(a, b), t.Child1(a, b))),
        t.TMem(b, X))))
    induction = t.TImplies(
        t.TAnd(t.TEx1(r, t.TAnd(t.Root(r), t.TMem(r, X))), closed),
        t.TAll1(c, t.TMem(c, X)))
    check("structural induction", induction)

    # Model synthesis: the smallest tree with a node that has a right
    # child but no left child below the root.
    print()
    print("Smallest tree containing a right-only branching node:")
    p, q = Var.first("p"), Var.first("q")
    left_var = Var.first("lc")
    has_right = t.TEx1(p, t.TEx1(q, t.TAnd(
        t.Child1(p, q),
        t.TNot(t.TEx1(left_var, t.Child0(p, left_var))))))
    compiler = TreeCompiler()
    dfa = compiler.compile(has_right)
    witness = dfa.smallest_accepted()
    assert witness is not None
    tree = witness[0]
    assert tree is not None
    print(tree.render())
    print(f"  ({tree.size()} nodes)")


if __name__ == "__main__":
    main()
