"""An oracular symbolic debugging session (paper §5).

The paper envisions the verifier as "an oracular, symbolic debugger":
when a program fails, the system supplies the *shortest* initial store
that exposes the bug and plays "a small cartoon of store
modifications" explaining it.  This example reproduces both §5
scenarios:

1. ``fumble`` — reverse with two loop statements accidentally swapped;
   the counterexample is a one-element list on which the loop builds a
   cycle.
2. ``swap`` — swap the first two list elements; the counterexample is
   a singleton list on which ``x^.next`` is nil and gets dereferenced.
   Adding the precondition ``{x^.next <> nil}`` confirms that this was
   the only fatal case: the fixed program verifies.

Run with::

    python examples/debugging_session.py
"""

from repro import format_result, render_symbols, verify_source
from repro.programs import FUMBLE, SWAP, SWAP_FIXED


def debug(title: str, source: str) -> None:
    print("=" * 72)
    print(title)
    print("=" * 72)
    result = verify_source(source)
    print(format_result(result))
    counterexample = result.counterexample
    if counterexample is not None:
        print()
        print("shortest failing store (as the paper's string "
              "encoding):")
        print("   ", render_symbols(counterexample.symbols))
    print()


def main() -> None:
    debug("Scenario 1: fumble — reverse with swapped lines", FUMBLE)
    debug("Scenario 2: swap — fails on singleton lists", SWAP)
    debug("Scenario 2 fixed: swap with {x^.next <> nil}", SWAP_FIXED)
    print("Debugging by verification: each failure came with a "
          "concrete, minimal input and a step-by-step cartoon; the "
          "fix was confirmed by a proof, not by testing.")


if __name__ == "__main__":
    main()
