program delete;
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;

{data} var x: List;
{pointer} var p, q: List;
begin
  {x<next*>p & (x = nil <=> p = nil) & ~(ex g: <garb?>g)}
  if p <> nil then begin
    if p^.next = nil then begin
      q := x^.next;
      if x^.tag = red then dispose(x, red) else dispose(x, blue);
      x := q;
      p := nil
    end else begin
      q := p^.next^.next;
      if p^.next^.tag = red then dispose(p^.next, red)
      else dispose(p^.next, blue);
      p^.next := q
    end
  end
  {(x = nil & p = nil & ~(ex g: <garb?>g))
    | (ex g: <garb?>g & (all r: <garb?>r => r = g))}
end.
