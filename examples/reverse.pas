program reverse;
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;

{data} var x, y: List;
{pointer} var p: List;
begin
  {y = nil}
  while x <> nil do begin
    p := x^.next;
    x^.next := y;
    y := x;
    x := p
  end
  {x = nil}
end.
