program copy;
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;

{data} var x, y: List;
{pointer} var p, q: List;
begin
  {y = nil & q = nil}
  p := x;
  while p <> nil do
    {x<next*>p & y<next*>q & (y = nil <=> q = nil)
      & (q <> nil => q^.next = nil)
      & (y = nil => p = x) & (x = nil => y = nil)}
    begin
    if y = nil then begin
      if p^.tag = red then new(y, red) else new(y, blue);
      q := y
    end else begin
      if p^.tag = red then new(q^.next, red)
      else new(q^.next, blue);
      q := q^.next
    end;
    q^.next := nil;
    p := p^.next
  end
  {p = nil & (x = nil <=> y = nil)
    & (q <> nil => q^.next = nil)}
end.
