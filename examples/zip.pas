program zip;
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;

{data} var x, y, z: List;
{pointer} var p, t: List;
begin
  {z = nil}
  if x = nil then begin t := x; x := y; y := t end;
  p := nil;
  while x <> nil do
    {(x = nil => y = nil) & z<next*>p & (z <> nil => p^.next = nil)}
    begin
      if z = nil then begin
        z := x;
        p := x
      end else begin
        p^.next := x;
        p := p^.next
      end;
      x := x^.next;
      p^.next := nil;
      if y <> nil then begin t := x; x := y; y := t end
    end
  {x = nil & y = nil}
end.
