program swap;
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;

{data} var x: List;
{pointer} var p: List;
begin
  if x <> nil then begin
    p := x;
    x := x^.next;
    p^.next := x^.next;
    x^.next := p
  end
end.
