program split;
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;

{data} var x, y, z: List;
{pointer} var p: List;
begin
  {y = nil & z = nil}
  while x <> nil do
    {(all c: (y<next*>c & c <> nil) => <(List:red)?>c)
      & (all c: (z<next*>c & c <> nil) => <(List:blue)?>c)}
    begin
    p := x;
    x := x^.next;
    if p^.tag = red then begin p^.next := y; y := p end
    else begin p^.next := z; z := p end
  end
  {x = nil
    & (all c: (y<next*>c & c <> nil) => <(List:red)?>c)
    & (all c: (z<next*>c & c <> nil) => <(List:blue)?>c)}
end.
