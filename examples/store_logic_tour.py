"""A tour of the store logic as a query and synthesis engine.

Beyond verifying programs, the decision procedure answers arbitrary
questions phrased in the store logic (paper §5: "a very general tool
... not limited to answering single, fixed questions"):

1. build the store drawn in §3 and *evaluate* formulas on it directly;
2. encode the store as the paper's string and decode it back;
3. compile a formula to its automaton and *synthesize* the smallest
   well-formed store satisfying it — model finding, the same machinery
   that produces counterexamples.

Run with::

    python examples/store_logic_tour.py
"""

from repro import (check_formula, eval_formula, parse_formula,
                   render_store, render_symbols)
from repro.mso.build import FormulaBuilder as F
from repro.mso.compile import Compiler
from repro.storelogic.translate import translate_formula
from repro.stores import Store, decode_store, encode_store
from repro.stores.schema import FieldInfo, RecordType, Schema
from repro.symbolic.layout import TrackLayout
from repro.symbolic.state import initial_store
from repro.symbolic.wf import wf_string


def make_schema() -> Schema:
    schema = Schema(
        enums={"Color": ("red", "blue")},
        records={"Item": RecordType(
            "Item", "tag", "Color",
            {"red": FieldInfo("next", "Item"),
             "blue": FieldInfo("next", "Item")})},
        data_vars={"x": "Item"},
        pointer_vars={"p": "Item"},
        pointer_aliases={"List": "Item"},
    )
    schema.validate()
    return schema


def smallest_model(schema: Schema, text: str) -> str:
    """Synthesize the smallest well-formed store satisfying a formula."""
    formula = check_formula(parse_formula(text), schema)
    compiler = Compiler()
    layout = TrackLayout(schema)
    layout.register(compiler)
    state = initial_store(schema, layout)
    automaton = compiler.compile(
        F.and_(wf_string(layout), translate_formula(formula, state)))
    word = automaton.shortest_accepted()
    if word is None:
        return "  (unsatisfiable)"
    symbols = layout.word_to_symbols(word, compiler.tracks())
    store = decode_store(schema, symbols)
    return ("  string: " + render_symbols(symbols) + "\n"
            + "\n".join("  " + line
                        for line in render_store(store).splitlines()))


def main() -> None:
    schema = make_schema()

    # 1. The store drawn in paper section 3.
    store = Store(schema)
    ids = store.make_list("x", ["red", "red", "blue", "red"])
    store.set_var("p", ids[2])
    print("The section-3 store:")
    print(render_store(store))
    print()
    print("Its string encoding:")
    print(" ", render_symbols(encode_store(store)))
    print()

    # 2. Evaluate the paper's formulas on it.
    queries = [
        "x<next.next.(List:blue)?>p",
        "p<next*>x",
        "~<(List:red)?>p => x<next*>p",
        "all c, d: c<next>d => ~<garb?>d",
    ]
    print("Queries on that store:")
    for text in queries:
        formula = check_formula(parse_formula(text), schema)
        print(f"  {text:45} -> {eval_formula(formula, store)}")
    print()

    # 3. Model synthesis: smallest stores satisfying a specification.
    print("Smallest well-formed store where p is blue and reachable "
          "from x:")
    print(smallest_model(schema, "x<next*>p & <(List:blue)?>p"))
    print()
    print("Smallest store with a red cell *after* a blue one:")
    print(smallest_model(
        schema, "ex c, d: <(List:blue)?>c & <(List:red)?>d & c<next+>d"))
    print()
    print("Smallest store with exactly one free (garbage) cell:")
    print(smallest_model(
        schema, "ex g: <garb?>g & (all r: <garb?>r => r = g)"))


if __name__ == "__main__":
    main()
