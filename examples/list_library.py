"""Verifying an abstract data type, operation by operation (paper §7).

The paper's answer to "where will this be used?": when implementing a
library data type, "it should be possible to state the required
invariants to obtain an automatic verification of the operations".

We implement a *worklist* — a list ``x`` with a cursor ``c`` that must
always sit on the list (or be nil) — and verify each operation as its
own annotated program whose pre- and postcondition carry the data-type
invariant ``x<next*>c``:

* ``push_front``: allocate a new head; the cursor starts there when it
  was nil;
* ``advance``: move the cursor one step;
* ``drop_front``: deallocate the head (cursor must be at the head or
  nil), freeing exactly one cell.

Run with::

    python examples/list_library.py
"""

from repro import format_result, verify_source

TYPES = """
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;
"""

INVARIANT = "x<next*>c"

PUSH_FRONT = f"""
program pushfront;
{TYPES}
{{data}} var x: List;
{{pointer}} var c, q: List;
begin
  {{{INVARIANT}}}
  q := x;
  new(x, red);
  x^.next := q;
  if c = nil then c := x
  {{{INVARIANT} & c <> nil & x <> nil}}
end.
"""

ADVANCE = f"""
program advance;
{TYPES}
{{data}} var x: List;
{{pointer}} var c, q: List;
begin
  {{{INVARIANT} & c <> nil}}
  c := c^.next
  {{{INVARIANT}}}
end.
"""

DROP_FRONT = f"""
program dropfront;
{TYPES}
{{data}} var x: List;
{{pointer}} var c, q: List;
begin
  {{{INVARIANT} & x <> nil & (c = x | c = nil) & q = nil
    & ~(ex g: <garb?>g)}}
  q := x^.next;
  if x^.tag = red then dispose(x, red) else dispose(x, blue);
  x := q;
  c := x;
  q := nil
  {{{INVARIANT} & (ex g: <garb?>g & (all r: <garb?>r => r = g))}}
end.
"""

OPERATIONS = [
    ("push_front", PUSH_FRONT),
    ("advance", ADVANCE),
    ("drop_front", DROP_FRONT),
]


def main() -> None:
    all_valid = True
    for name, source in OPERATIONS:
        result = verify_source(source)
        print(format_result(result))
        print()
        all_valid = all_valid and result.valid
    if all_valid:
        print("The worklist data type is verified: every operation "
              "preserves the invariant x<next*>c, never touches a "
              "dangling pointer, and manages memory exactly.")
    else:
        print("Some operation failed — see the counterexamples above.")


if __name__ == "__main__":
    main()
