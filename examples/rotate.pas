program rotate;
type
  Color = (red, blue);
  List = ^Item;
  Item = record case tag: Color of red, blue: (next: List) end;

{data} var x: List;
{pointer} var p: List;
begin
  {x<next*>p & (x <> nil => p^.next = nil)}
  if x <> nil then begin
    p^.next := x;
    x := x^.next;
    p := p^.next;
    p^.next := nil
  end
  {x<next*>p & (x <> nil => p^.next = nil)}
end.
